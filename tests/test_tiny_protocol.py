"""Protocol tests for the tiny-directory home controller (paper §IV)."""

import pytest

from conftest import Driver, make_system
from repro.sim.config import TinySpec
from repro.types import LLCState, PrivateState


def tiny_system(**kw) -> Driver:
    spec = TinySpec(**{**dict(ratio=1 / 16, policy="dstra"), **kw})
    return Driver(make_system(spec))


def llc_line(d: Driver, addr: int):
    bank = d.system.home.banks[d.system.home.bank_of(addr)]
    return bank.lookup(addr, touch=False)


class TestAllocation:
    def test_read_to_corrupted_shared_triggers_allocation(self):
        d = tiny_system()
        d.ifetch(0, 0x40)  # corrupted shared {0}
        d.ifetch(1, 0x40)  # read to corrupted: allocation situation (i)
        assert d.system.home.tiny.find_quiet(0x40) is not None
        line, _ = llc_line(d, 0x40)
        assert line.state is LLCState.CLEAN  # reconstructed
        assert line.coh is None

    def test_ifetch_to_unowned_triggers_allocation(self):
        d = tiny_system()
        d.ifetch(0, 0x40)  # allocation situation (ii): free ways exist
        assert d.system.home.tiny.find_quiet(0x40) is not None

    def test_data_read_to_unowned_does_not_allocate(self):
        d = tiny_system()
        d.read(0, 0x40)
        assert d.system.home.tiny.find_quiet(0x40) is None
        line, _ = llc_line(d, 0x40)
        assert line.state is LLCState.CORRUPTED

    def test_tracked_shared_read_is_two_hop(self):
        d = tiny_system()
        d.ifetch(0, 0x40)
        d.ifetch(1, 0x40)
        before = d.system.stats.lengthened
        d.ifetch(2, 0x40)  # tiny-tracked: LLC supplies in 2 hops
        assert d.system.stats.lengthened == before
        assert d.state(2, 0x40) is PrivateState.SHARED

    def test_tiny_reduces_lengthened_vs_inllc(self):
        from repro.sim.config import InLLCSpec

        def lengthened(driver):
            for round_ in range(30):
                for core in range(4):
                    driver.ifetch(core, 0x40 * (round_ % 5))
            return driver.system.stats.lengthened

        inllc = Driver(make_system(InLLCSpec()))
        tiny = tiny_system()
        assert lengthened(tiny) < lengthened(inllc)


class TestTrackedWrites:
    def test_write_to_tiny_tracked_block(self):
        d = tiny_system()
        d.ifetch(0, 0x40)
        d.ifetch(1, 0x40)
        d.write(2, 0x40)
        entry = d.system.home.tiny.find_quiet(0x40)
        assert entry is not None and entry.coh.owner == 2
        assert d.state(0, 0x40) is PrivateState.INVALID

    def test_upgrade_on_tiny_tracked_block(self):
        d = tiny_system()
        d.ifetch(0, 0x40)
        d.ifetch(1, 0x40)
        d.write(1, 0x40)  # upgrade from S
        entry = d.system.home.tiny.find_quiet(0x40)
        assert entry.coh.owner == 1
        assert d.state(0, 0x40) is PrivateState.INVALID
        assert d.state(1, 0x40) is PrivateState.MODIFIED


class TestEntryLifecycle:
    def _evict_from_core(self, d, core, addr):
        step = d.system.config.l2_sets
        for i in range(1, 9):
            d.read(core, addr + i * step)

    def test_entry_freed_when_block_unowned(self):
        d = tiny_system()
        d.ifetch(0, 0x40)
        assert d.system.home.tiny.find_quiet(0x40) is not None
        self._evict_from_core(d, 0, 0x40)
        assert d.system.home.tiny.find_quiet(0x40) is None
        line, _ = llc_line(d, 0x40)
        assert line is not None and line.coh is None

    def test_invariants_dstra_fuzz(self):
        tiny_system(policy="dstra").fuzz(3000)

    def test_invariants_gnru_fuzz(self):
        tiny_system(policy="gnru").fuzz(3000)

    def test_invariants_spill_fuzz(self):
        tiny_system(policy="gnru", spill=True, spill_window=64).fuzz(3000)

    def test_invariants_tiny_256_fuzz(self):
        tiny_system(ratio=1 / 256, policy="gnru", spill=True, spill_window=64).fuzz(3000)


class TestSpilling:
    def make_spilling_driver(self):
        d = tiny_system(ratio=1 / 64, policy="gnru", spill=True, spill_window=48)
        return d

    def test_spills_happen_under_pressure(self):
        d = self.make_spilling_driver()
        # Many hot shared blocks, far more than the tiny directory holds.
        for round_ in range(80):
            for core in range(4):
                for block in range(12):
                    d.ifetch(core, 0x40 + 0x40 * block)
        assert d.system.stats.spills > 0

    def test_spilled_entry_serves_two_hop(self):
        d = self.make_spilling_driver()
        for round_ in range(80):
            for core in range(4):
                for block in range(12):
                    d.ifetch(core, 0x40 + 0x40 * block)
        assert d.system.stats.spill_saved > 0

    def test_write_unspills_into_corrupted_exclusive(self):
        d = self.make_spilling_driver()
        for round_ in range(80):
            for core in range(4):
                for block in range(12):
                    d.ifetch(core, 0x40 + 0x40 * block)
        # Find a spilled block and write to it.
        spilled = None
        for bank in d.system.home.banks:
            for line in bank.iter_lines():
                if line.is_spill:
                    spilled = line.tag
                    break
            if spilled is not None:
                break
        assert spilled is not None
        writer = 3
        d.write(writer, spilled)
        data, spill = llc_line(d, spilled)
        assert spill is None
        assert data.state is LLCState.CORRUPTED
        assert data.coh.owner == writer

    def test_no_spills_when_disabled(self):
        d = tiny_system(ratio=1 / 64, policy="gnru", spill=False)
        for round_ in range(80):
            for core in range(4):
                for block in range(12):
                    d.ifetch(core, 0x40 + 0x40 * block)
        assert d.system.stats.spills == 0


class TestPerformanceShape:
    def _shared_heavy(self, d, rounds=60):
        for round_ in range(rounds):
            for core in range(4):
                d.ifetch(core, 0x40 * (round_ % 6))
                d.read(core, 0x1000 + 0x40 * (round_ % 4))

    def test_tiny_faster_than_inllc_on_shared_reads(self):
        from repro.sim.config import InLLCSpec

        inllc = Driver(make_system(InLLCSpec()))
        tiny = tiny_system()
        self._shared_heavy(inllc)
        self._shared_heavy(tiny)
        assert tiny.now < inllc.now
