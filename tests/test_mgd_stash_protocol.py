"""Protocol tests for the MgD and Stash home controllers (Fig. 22)."""

import pytest

from conftest import Driver, make_system
from repro.directory.mgd import BLOCKS_PER_REGION
from repro.sim.config import MgdSpec, StashSpec
from repro.types import PrivateState


class TestMgd:
    @pytest.fixture
    def d(self) -> Driver:
        return Driver(make_system(MgdSpec(ratio=1 / 4)))

    def test_private_blocks_tracked_at_region_grain(self, d):
        region_base = BLOCKS_PER_REGION * 4
        for offset in range(4):
            d.read(0, region_base + offset)
        directory = d.system.home.directory
        entry = directory.lookup_region(region_base, touch=False)
        assert entry is not None and entry.owner == 0
        assert bin(entry.presence).count("1") == 4
        # One region entry, no block entries: the MgD saving.
        assert directory.lookup_block(region_base, touch=False) is None

    def test_second_core_demotes_region(self, d):
        region_base = BLOCKS_PER_REGION * 4
        for offset in range(3):
            d.read(0, region_base + offset)
        d.read(1, region_base)  # demotion
        directory = d.system.home.directory
        assert directory.lookup_region(region_base, touch=False) is None
        coh = directory.lookup_block(region_base, touch=False)
        assert coh is not None
        assert coh.holds(0) and coh.holds(1)

    def test_demotion_preserves_untouched_blocks(self, d):
        region_base = BLOCKS_PER_REGION * 4
        for offset in range(3):
            d.read(0, region_base + offset)
        d.read(1, region_base)
        # The owner's other blocks got block-grain entries.
        directory = d.system.home.directory
        for offset in (1, 2):
            coh = directory.lookup_block(region_base + offset, touch=False)
            assert coh is not None and coh.holds(0)
        assert d.state(0, region_base + 1) is not PrivateState.INVALID

    def test_ifetch_uses_block_grain(self, d):
        d.ifetch(0, 0x80)
        directory = d.system.home.directory
        assert directory.lookup_block(0x80, touch=False) is not None
        assert directory.lookup_region(0x80, touch=False) is None

    def test_eviction_notice_clears_presence(self, d):
        region_base = BLOCKS_PER_REGION * 4
        d.read(0, region_base)
        step = d.system.config.l2_sets
        for i in range(1, 9):
            d.read(0, region_base + i * step * BLOCKS_PER_REGION)
        directory = d.system.home.directory
        entry = directory.lookup_region(region_base, touch=False)
        assert entry is None or not entry.presence & 1

    def test_invariants_after_fuzz(self):
        Driver(make_system(MgdSpec(ratio=1 / 4))).fuzz(2500)

    def test_small_mgd_invariants_after_fuzz(self):
        Driver(make_system(MgdSpec(ratio=1 / 16))).fuzz(2500)


class TestStash:
    def small_stash(self) -> Driver:
        return Driver(make_system(StashSpec(ratio=1 / 16)))

    def test_private_victim_is_stashed_not_invalidated(self):
        d = self.small_stash()
        # Touch many private blocks from one core to overflow the
        # directory; victims should remain cached (stashed).
        for addr in range(0, 120 * 64, 64):
            d.read(0, addr)
        stash = d.system.home.stash
        assert stash.count() > 0
        for addr in list(stash._stashed):
            assert d.system.cores[0].holds(addr)

    def test_broadcast_on_sharing_a_stashed_block(self):
        d = self.small_stash()
        for addr in range(0, 120 * 64, 64):
            d.read(0, addr)
        stash = d.system.home.stash
        target = next(iter(stash._stashed))
        before = d.system.stats.broadcasts
        d.read(1, target)
        assert d.system.stats.broadcasts == before + 1
        assert d.state(1, target) is PrivateState.SHARED

    def test_broadcast_rebuilds_directory_entry(self):
        d = self.small_stash()
        for addr in range(0, 120 * 64, 64):
            d.read(0, addr)
        target = next(iter(d.system.home.stash._stashed))
        d.read(1, target)
        coh = d.system.home.directory.lookup(target, touch=False)
        assert coh is not None and coh.holds(0) and coh.holds(1)

    def test_eviction_notice_unstashes(self):
        d = self.small_stash()
        for addr in range(0, 120 * 64, 64):
            d.read(0, addr)
        stash = d.system.home.stash
        target = next(iter(stash._stashed))
        step = d.system.config.l2_sets
        for i in range(1, 9):
            d.read(0, target + i * step)
        assert not stash.is_stashed(target)

    def test_broadcast_traffic_is_heavy(self):
        """The paper's point: broadcast recovery saturates the NoC."""
        from repro.interconnect.traffic import MessageClass

        d = self.small_stash()
        for addr in range(0, 120 * 64, 64):
            d.read(0, addr)
        before = d.system.stats.traffic.messages_for(MessageClass.COHERENCE)
        target = next(iter(d.system.home.stash._stashed))
        d.read(1, target)
        after = d.system.stats.traffic.messages_for(MessageClass.COHERENCE)
        assert after - before >= 2 * d.system.config.num_cores

    def test_invariants_after_fuzz(self):
        self.small_stash().fuzz(2500)
