"""Unit tests for interconnect traffic accounting."""

from repro.interconnect.traffic import (
    CONTROL_BYTES,
    DATA_BYTES,
    PARTIAL_BYTES,
    MessageClass,
    TrafficMeter,
)


class TestTrafficMeter:
    def test_starts_empty(self):
        meter = TrafficMeter()
        assert meter.total_bytes == 0

    def test_control_message_size(self):
        meter = TrafficMeter()
        meter.control(MessageClass.PROCESSOR)
        assert meter.bytes_for(MessageClass.PROCESSOR) == CONTROL_BYTES

    def test_data_message_size(self):
        meter = TrafficMeter()
        meter.data(MessageClass.WRITEBACK)
        assert meter.bytes_for(MessageClass.WRITEBACK) == DATA_BYTES

    def test_partial_message_size(self):
        meter = TrafficMeter()
        meter.partial(MessageClass.COHERENCE)
        assert meter.bytes_for(MessageClass.COHERENCE) == PARTIAL_BYTES

    def test_count_multiplier(self):
        meter = TrafficMeter()
        meter.control(MessageClass.COHERENCE, count=5)
        assert meter.bytes_for(MessageClass.COHERENCE) == 5 * CONTROL_BYTES
        assert meter.messages_for(MessageClass.COHERENCE) == 5

    def test_classes_are_independent(self):
        meter = TrafficMeter()
        meter.data(MessageClass.PROCESSOR)
        assert meter.bytes_for(MessageClass.WRITEBACK) == 0
        assert meter.bytes_for(MessageClass.COHERENCE) == 0

    def test_total_is_sum(self):
        meter = TrafficMeter()
        meter.data(MessageClass.PROCESSOR)
        meter.control(MessageClass.WRITEBACK)
        meter.partial(MessageClass.COHERENCE)
        assert meter.total_bytes == DATA_BYTES + CONTROL_BYTES + PARTIAL_BYTES

    def test_clear_zeroes_in_place(self):
        meter = TrafficMeter()
        meter.data(MessageClass.PROCESSOR)
        meter.clear()
        assert meter.total_bytes == 0
        assert meter.messages_for(MessageClass.PROCESSOR) == 0

    def test_as_dict_keys(self):
        meter = TrafficMeter()
        assert set(meter.as_dict()) == {"processor", "writeback", "coherence"}

    def test_dump_load_roundtrip(self):
        meter = TrafficMeter()
        meter.data(MessageClass.PROCESSOR, count=3)
        meter.control(MessageClass.COHERENCE, count=2)
        clone = TrafficMeter.load(meter.dump())
        assert clone.as_dict() == meter.as_dict()
        assert clone.messages_for(MessageClass.COHERENCE) == 2

    def test_data_message_carries_block_plus_header(self):
        assert DATA_BYTES == 64 + CONTROL_BYTES
