"""Tests for the protocol conformance subsystem (repro.verify)."""

import json

import pytest

from repro.errors import TraceError
from repro.verify import (
    KNOWN_TRANSITIONS,
    CoverageMap,
    FaultStep,
    R,
    W,
    coverage_fraction,
    ddmin,
    default_verify_spec,
    fault_plan_for,
    fuzz_run,
    load_reproducer,
    replay,
    reproducer_dict,
    run_litmus,
    run_schedule,
    save_reproducer,
    step_from_dict,
    step_to_dict,
)
from repro.verify.cli import main as verify_main
from repro.verify.litmus import LITMUS_TESTS
from repro.verify.reproducer import SCHEME_SPECS

ALL_SCHEMES = sorted(SCHEME_SPECS)


# ----------------------------------------------------------------------
# Litmus engine
# ----------------------------------------------------------------------

class TestLitmus:
    def test_every_scheme_passes_the_library(self):
        schemes = {name: default_verify_spec(name) for name in ALL_SCHEMES}
        coverage = {name: CoverageMap() for name in ALL_SCHEMES}
        outcomes = run_litmus(schemes, coverage)
        failures = [o for o in outcomes if not o.passed]
        assert failures == []
        # Every scheme ran its applicable tests, scheme-specific ones
        # only where they apply.
        ran = {(o.scheme, o.test) for o in outcomes}
        assert ("tiny", "spill_recall") in ran
        assert ("sparse", "spill_recall") not in ran
        assert ("stash", "stash_recovery") in ran
        assert ("mgd", "mgd_region_demotion") in ran

    def test_litmus_collects_mesi_coverage(self):
        schemes = {"sparse": default_verify_spec("sparse")}
        coverage = {"sparse": CoverageMap()}
        run_litmus(schemes, coverage)
        covered = coverage["sparse"].covered()
        assert "mesi:I->E:read" in covered
        assert "mesi:S->M:write" in covered

    def test_library_names_are_unique(self):
        names = [t.name for t in LITMUS_TESTS]
        assert len(names) == len(set(names))


# ----------------------------------------------------------------------
# Oracle
# ----------------------------------------------------------------------

class TestOracle:
    def test_dropped_copy_produces_violation(self):
        """A write lost to a dropped private copy must surface — via the
        oracle or a protocol check — once the schedule touches it."""
        steps = [
            W(0, 5),
            FaultStep("drop_private_copy", 5, 0),
            R(1, 5),
            R(0, 5),
        ]
        result = run_schedule(steps, spec=default_verify_spec("sparse"))
        assert result.failed

    def test_clean_schedule_has_no_violation(self):
        steps = [W(0, 5), R(1, 5), W(1, 5), R(0, 5), R(2, 5)]
        for name in ALL_SCHEMES:
            result = run_schedule(steps, spec=default_verify_spec(name))
            assert result.violation is None, name


# ----------------------------------------------------------------------
# Fuzzer: clean runs, fault detection, shrinking
# ----------------------------------------------------------------------

class TestFuzzer:
    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_clean_fuzz_passes(self, scheme):
        result = fuzz_run(scheme, default_verify_spec(scheme), steps=1200, seed=7)
        assert result.violation is None
        assert result.coverage_counts  # coverage was collected

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_injected_fault_detected_and_shrunk(self, scheme):
        plan = fault_plan_for(scheme, 7, 0)
        result = fuzz_run(scheme, default_verify_spec(scheme), steps=1200, seed=8, plan=plan)
        assert result.detected, f"{scheme}: fault ran clean"
        assert result.injected  # the fault actually materialized
        assert 1 <= len(result.reproducer) <= 32
        # The minimized schedule still carries the pinned fault step.
        kinds = {type(step).__name__ for step in result.reproducer}
        assert "FaultStep" in kinds

    def test_minimized_reproducer_replays(self):
        plan = fault_plan_for("tiny", 7, 0)
        result = fuzz_run("tiny", default_verify_spec("tiny"), steps=1200, seed=8, plan=plan)
        assert result.detected
        replayed = run_schedule(
            result.reproducer,
            spec=default_verify_spec("tiny"),
            num_cores=16,
            l1_kb=8,
            l2_kb=32,
        )
        assert replayed.failed

    def test_ddmin_reduces_to_minimum(self):
        # Failing iff both 3 and 7 survive: ddmin must find exactly them.
        def test_fn(steps):
            return 3 in steps and 7 in steps

        minimal, replays = ddmin(list(range(10)), test_fn)
        assert sorted(minimal) == [3, 7]
        assert replays > 0


# ----------------------------------------------------------------------
# Coverage accounting
# ----------------------------------------------------------------------

class TestCoverage:
    def test_known_universe_is_wellformed(self):
        for scheme, universe in KNOWN_TRANSITIONS.items():
            assert scheme in SCHEME_SPECS
            assert len(universe) == len(set(universe))
            for label in universe:
                group, _, event = label.partition(":")
                assert group and event, label

    def test_fuzz_covers_most_known_transitions(self):
        schemes = {"tiny": default_verify_spec("tiny")}
        coverage = {"tiny": CoverageMap()}
        run_litmus(schemes, coverage)
        result = fuzz_run("tiny", default_verify_spec("tiny"), steps=4000, seed=7)
        coverage["tiny"].merge(result.coverage_counts)
        assert coverage_fraction("tiny", coverage["tiny"].covered()) >= 0.6

    def test_merge_accumulates_counts(self):
        a, b = CoverageMap(), CoverageMap()
        a.note("x:1")
        b.note("x:1")
        b.note("y:2")
        a.merge(b)
        assert a.counts["x:1"] == 2
        assert a.counts["y:2"] == 1


# ----------------------------------------------------------------------
# Bit-identity: instrumentation off by default, quiet when on
# ----------------------------------------------------------------------

class TestBitIdentity:
    def test_harnessed_run_matches_bare_run(self):
        """Oracle + auditor + coverage probes must not perturb the
        simulated machine: cycles and stats stay bit-identical."""
        from repro.sim.config import SystemConfig
        from repro.sim.system import System
        from repro.types import Access

        steps = [R(0, 9), W(1, 9), R(2, 9), W(0, 3), R(1, 3), R(3, 9), W(2, 3)]
        spec = default_verify_spec("tiny")

        bare = System(SystemConfig(num_cores=4, l1_kb=1, l2_kb=4, scheme=spec))
        now = 0
        for step in steps:
            now += max(1, bare.access(Access(step.core, step.addr, step.access_kind()), now))

        monitored = run_schedule(
            steps, spec=spec, audit_interval=1, coverage=CoverageMap()
        )
        assert monitored.violation is None
        assert monitored.executed == len(steps)
        # Rebuild a monitored system to compare stats dumps directly.
        from repro.verify.harness import VerifyHarness, build_system

        system = build_system(spec)
        harness = VerifyHarness(system, audit_interval=1, coverage=CoverageMap())
        for step in steps:
            harness.run_step(step)
        assert system.stats.dump() == bare.stats.dump()
        assert harness.now == now


# ----------------------------------------------------------------------
# Reproducer files
# ----------------------------------------------------------------------

class TestReproducer:
    def _payload(self):
        steps = [W(0, 5), FaultStep("drop_private_copy", 5, 0), R(1, 5)]
        return reproducer_dict(
            "sparse", default_verify_spec("sparse"), steps, "violation text", seed=3
        )

    def test_roundtrip_and_replay(self, tmp_path):
        path = save_reproducer(tmp_path / "r.json", self._payload())
        loaded = load_reproducer(path)
        assert loaded["scheme"] == "sparse"
        result = replay(loaded)
        assert result.failed

    def test_step_dict_roundtrip(self):
        for step in (R(1, 2), W(3, 4), FaultStep("flip_sharer_bit", 9, 2)):
            assert step_from_dict(step_to_dict(step)) == step

    def test_bad_version_rejected(self, tmp_path):
        payload = self._payload()
        payload["format_version"] = 99
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(TraceError):
            load_reproducer(path)

    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("{not json")
        with pytest.raises(TraceError):
            load_reproducer(path)


# ----------------------------------------------------------------------
# Parallel task fan-out
# ----------------------------------------------------------------------

class TestRunTasks:
    def test_preserves_order_inline(self):
        from repro.parallel import run_tasks

        assert run_tasks(_double, [3, 1, 2], jobs=1) == [6, 2, 4]

    def test_preserves_order_parallel(self):
        from repro.parallel import run_tasks

        assert run_tasks(_double, list(range(8)), jobs=2) == [2 * n for n in range(8)]


def _double(n):
    return 2 * n


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

class TestCli:
    def test_litmus_only_smoke(self, capsys, tmp_path):
        rc = verify_main(["--litmus", "--scheme", "sparse", "--out", str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "verify: OK" in out

    def test_fuzz_with_fault_writes_reproducer(self, capsys, tmp_path):
        rc = verify_main(
            ["--fuzz", "--scheme", "tiny", "--steps", "800", "--seed", "7",
             "--faults", "1", "--jobs", "1", "--out", str(tmp_path)]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "fault detected tiny" in out
        files = list(tmp_path.glob("tiny-fault-*.json"))
        assert len(files) == 1
        rc = verify_main(["--replay", str(files[0])])
        assert rc == 0

    def test_coverage_floor_failure_is_reported(self, capsys, tmp_path):
        rc = verify_main(
            ["--litmus", "--scheme", "sparse", "--min-coverage", "1.0",
             "--coverage-report", "--out", str(tmp_path)]
        )
        out = capsys.readouterr().out
        assert rc == 1
        assert "COVERAGE LOW" in out
        assert "transition coverage" in out

    def test_module_dispatch(self, capsys, tmp_path):
        from repro.__main__ import main as repro_main

        rc = repro_main(["verify", "--litmus", "--scheme", "in_llc",
                         "--out", str(tmp_path)])
        assert rc == 0
        assert "verify: OK" in capsys.readouterr().out
