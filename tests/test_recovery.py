"""Self-healing coherence tests (``repro.recovery``).

The acceptance bar (ISSUE 6): for every scheme family, an injected
directory corruption under ``RecoveryPolicy("repair")`` completes the
run with at least one repair, passes a post-repair full invariant
audit and the ``repro.verify`` value oracle; a clean run with recovery
enabled is bit-identical to one without; exhausting ``max_repairs``
(or re-tripping a quarantined block under ``repair-strict``) escalates
as :class:`RecoveryEscalation`; repair cost lands in the dedicated
``recovery`` stats section and never in the protocol traffic meters.
"""

from __future__ import annotations

import pytest

from repro.errors import (
    ConfigError,
    InvariantViolation,
    RecoveryEscalation,
)
from repro.recovery import (
    DEFAULT_MAX_REPAIRS,
    RecoveryManager,
    RecoveryPolicy,
    recovery_from_env,
)
from repro.resilience import (
    Fault,
    FaultInjector,
    FaultKind,
    FaultPlan,
    ProtocolAuditor,
)
from repro.sim.config import (
    InLLCSpec,
    MgdSpec,
    SparseSpec,
    StashSpec,
    SystemConfig,
    TinySpec,
)
from repro.sim.engine import run_trace
from repro.sim.stats import SimStats
from repro.sim.system import System
from repro.verify.harness import run_schedule
from repro.verify.steps import FaultStep, R, W
from repro.workloads.generator import generate_streams
from repro.workloads.profiles import profile

AUDIT_INTERVAL = 250
INJECT_AT = 1000  # audit-window boundary: corruption is seen immediately

SCHEMES = [
    pytest.param(SparseSpec(ratio=2.0), id="sparse"),
    pytest.param(InLLCSpec(), id="inllc"),
    pytest.param(TinySpec(ratio=1 / 32, policy="gnru", spill=True,
                          spill_window=64), id="tiny"),
    pytest.param(MgdSpec(ratio=1 / 8), id="mgd"),
    pytest.param(StashSpec(ratio=1 / 32), id="stash"),
]

#: Tracking-corruption kinds a rebuild can genuinely undo. DROP_PRIVATE_COPY
#: is excluded on purpose: a silently lost M copy loses *data*, which no
#: directory reconstruction can restore.
TRACKING_FAULTS = [
    FaultKind.FLIP_SHARER_BIT,
    FaultKind.CORRUPT_DIRECTORY_ENTRY,
]


def _build(spec, fault_kind=None, num_cores: int = 8, accesses: int = 6000):
    config = SystemConfig(num_cores=num_cores, l1_kb=1, l2_kb=4, scheme=spec)
    streams = generate_streams(profile("barnes"), config, accesses, seed=3)
    injector = None
    if fault_kind is not None:
        plan = FaultPlan(
            faults=(Fault(kind=fault_kind, after_access=INJECT_AT),), seed=7
        )
        injector = FaultInjector(plan)
    system = System(config, fault_injector=injector)
    return system, streams


class TestPolicy:
    def test_defaults(self):
        policy = RecoveryPolicy()
        assert policy.mode == "abort"
        assert not policy.enabled
        assert policy.max_repairs == DEFAULT_MAX_REPAIRS

    def test_modes(self):
        assert RecoveryPolicy("repair").enabled
        assert not RecoveryPolicy("repair").strict
        assert RecoveryPolicy("repair-strict").strict

    def test_rejects_unknown_mode(self):
        with pytest.raises(ConfigError):
            RecoveryPolicy("heal")

    def test_rejects_negative_budget(self):
        with pytest.raises(ConfigError):
            RecoveryPolicy("repair", max_repairs=-1)


class TestEndToEndRepair:
    @pytest.mark.parametrize("spec", SCHEMES)
    @pytest.mark.parametrize("kind", TRACKING_FAULTS,
                             ids=lambda k: k.value)
    def test_injected_corruption_is_repaired_and_run_completes(
        self, spec, kind
    ):
        system, streams = _build(spec, kind)
        recovery = RecoveryManager(RecoveryPolicy("repair"))
        stats = run_trace(
            system, streams,
            auditor=ProtocolAuditor(interval=AUDIT_INTERVAL),
            recovery=recovery,
        )
        assert len(system.fault_injector.injected) == 1
        assert recovery.repairs >= 1
        assert recovery.escalations == 0
        # Post-repair the full invariant audit passes.
        system.check_invariants()
        # The repair published its cost to the dedicated section.
        assert stats.recovery["repairs"] == recovery.repairs
        assert stats.recovery["quarantined_blocks"] >= 1
        assert stats.recovery["probe_messages"] >= 2 * system.config.num_cores
        assert stats.recovery["repair_cycles"] > 0
        assert recovery.report()  # human-readable log is non-empty
        # ... and round-trips through dump/load.
        assert SimStats.load(stats.dump()).recovery == stats.recovery

    @pytest.mark.parametrize("spec", SCHEMES)
    def test_abort_mode_still_raises(self, spec):
        system, streams = _build(spec, FaultKind.CORRUPT_DIRECTORY_ENTRY)
        recovery = RecoveryManager(RecoveryPolicy("abort"))
        with pytest.raises(InvariantViolation):
            run_trace(
                system, streams,
                auditor=ProtocolAuditor(interval=AUDIT_INTERVAL),
                recovery=recovery,
            )
        assert recovery.repairs == 0

    @pytest.mark.parametrize("spec", SCHEMES)
    def test_clean_run_bit_identical_with_recovery_enabled(self, spec):
        system_plain, streams = _build(spec)
        stats_plain = run_trace(
            system_plain, streams, auditor=ProtocolAuditor(interval=100)
        )
        system_healed, streams = _build(spec)
        stats_healed = run_trace(
            system_healed, streams,
            auditor=ProtocolAuditor(interval=100),
            recovery=RecoveryManager(RecoveryPolicy("repair")),
        )
        assert stats_plain.dump() == stats_healed.dump()
        assert "recovery" not in stats_healed.dump()


class TestEscalation:
    def test_zero_budget_escalates_with_cause_chained(self):
        system, streams = _build(
            SparseSpec(ratio=2.0), FaultKind.CORRUPT_DIRECTORY_ENTRY
        )
        recovery = RecoveryManager(RecoveryPolicy("repair", max_repairs=0))
        with pytest.raises(RecoveryEscalation) as excinfo:
            run_trace(
                system, streams,
                auditor=ProtocolAuditor(interval=AUDIT_INTERVAL),
                recovery=recovery,
            )
        assert recovery.escalations == 1
        assert isinstance(excinfo.value.__cause__, InvariantViolation)
        # RecoveryEscalation *is* an InvariantViolation: callers that
        # catch the historical type keep working.
        assert isinstance(excinfo.value, InvariantViolation)

    @staticmethod
    def _driven_system():
        """A warmed system with an idle injector ready for apply_now."""
        config = SystemConfig(num_cores=8, l1_kb=1, l2_kb=4,
                              scheme=SparseSpec(ratio=2.0))
        streams = generate_streams(profile("barnes"), config, 6000, seed=3)
        system = System(config,
                        fault_injector=FaultInjector(FaultPlan(seed=7)))
        return system, streams

    def test_repair_strict_escalates_on_requarantined_block(self):
        system, streams = self._driven_system()
        # Warm the system up so tracked blocks exist.
        run_trace(system, [stream[:250] for stream in streams])
        auditor = ProtocolAuditor()
        auditor.install(system)
        recovery = RecoveryManager(RecoveryPolicy("repair-strict"))
        fault = Fault(FaultKind.CORRUPT_DIRECTORY_ENTRY, after_access=0)
        system.fault_injector.apply_now(system, fault)
        [injected] = system.fault_injector.injected
        recovery.audit(auditor, system)  # first trip: repaired
        assert recovery.repairs == 1
        assert injected.addr in recovery.quarantined
        # Corrupt the very same block again: strict mode must escalate.
        system.fault_injector.apply_now(
            system,
            Fault(FaultKind.CORRUPT_DIRECTORY_ENTRY, after_access=0,
                  addr=injected.addr),
        )
        with pytest.raises(RecoveryEscalation):
            recovery.audit(auditor, system)

    def test_plain_repair_re_repairs_the_same_block(self):
        system, streams = self._driven_system()
        run_trace(system, [stream[:250] for stream in streams])
        auditor = ProtocolAuditor()
        auditor.install(system)
        recovery = RecoveryManager(RecoveryPolicy("repair"))
        system.fault_injector.apply_now(
            system, Fault(FaultKind.CORRUPT_DIRECTORY_ENTRY, after_access=0)
        )
        [injected] = system.fault_injector.injected
        recovery.audit(auditor, system)
        system.fault_injector.apply_now(
            system,
            Fault(FaultKind.CORRUPT_DIRECTORY_ENTRY, after_access=0,
                  addr=injected.addr),
        )
        recovery.audit(auditor, system)
        assert recovery.repairs == 2


class TestVerifyIntegration:
    @pytest.mark.parametrize("spec", SCHEMES)
    def test_schedule_with_fault_passes_oracle_after_repair(self, spec):
        # Build sharing, corrupt the tracking entry, let the next audit
        # window repair it (recovery acts at audit windows — touching
        # the corrupted block before one would trip an inline protocol
        # error), then re-access the block: the oracle checks every read
        # value, so a surviving clean result means the repair preserved
        # the data as well as the metadata.
        steps = []
        for round_ in range(3):
            steps.append(W(0, 0x40))
            steps.extend(R(core, 0x40) for core in range(1, 4))
        steps.append(FaultStep("corrupt_directory_entry", addr=0x40))
        # Unrelated traffic carries the run to the next audit boundary.
        steps.extend(R(core, 0x80) for core in range(4))
        for round_ in range(3):
            steps.append(W(1, 0x40))
            steps.extend(R(core, 0x40) for core in (0, 2, 3))
        recovery = RecoveryManager(RecoveryPolicy("repair"))
        result = run_schedule(
            steps, spec=spec, audit_interval=4, recovery=recovery
        )
        assert result.violation is None, result.violation
        assert result.repairs >= 1
        assert result.injected  # the fault really was applied

    def test_schedule_without_recovery_still_fails(self):
        steps = []
        for round_ in range(3):
            steps.append(W(0, 0x40))
            steps.extend(R(core, 0x40) for core in range(1, 4))
        steps.append(FaultStep("corrupt_directory_entry", addr=0x40))
        steps.extend(R(core, 0x40) for core in range(4))
        result = run_schedule(
            steps, spec=SparseSpec(ratio=2.0), audit_interval=4
        )
        assert result.failed


class TestRecoveryFromEnv:
    @pytest.mark.parametrize("value", ["", "abort", "off", "0", "no", "false"])
    def test_disabled(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_RECOVERY", value)
        assert recovery_from_env() is None

    @pytest.mark.parametrize("value", ["repair", "on", "1", "yes", "true"])
    def test_repair(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_RECOVERY", value)
        manager = recovery_from_env()
        assert manager is not None
        assert manager.policy.mode == "repair"
        assert manager.policy.max_repairs == DEFAULT_MAX_REPAIRS

    def test_budget_suffix(self, monkeypatch):
        monkeypatch.setenv("REPRO_RECOVERY", "repair:3")
        assert recovery_from_env().policy.max_repairs == 3
        monkeypatch.setenv("REPRO_RECOVERY", "repair-strict:5")
        manager = recovery_from_env()
        assert manager.policy.strict
        assert manager.policy.max_repairs == 5

    @pytest.mark.parametrize("value", ["heal", "repair:x", "repair:-1"])
    def test_invalid_warns_and_disables(self, monkeypatch, capsys, value):
        monkeypatch.setenv("REPRO_RECOVERY", value)
        assert recovery_from_env() is None
        err = capsys.readouterr().err
        assert "REPRO_RECOVERY" in err and "DISABLED" in err


class TestHarnessWiring:
    def test_run_app_repairs_under_env(self, monkeypatch):
        from repro.analysis.runner import RunScale, run_app

        monkeypatch.setenv("REPRO_FAULTS", "corrupt_directory_entry@2000")
        monkeypatch.setenv("REPRO_FAULT_SEED", "5")
        monkeypatch.setenv("REPRO_AUDIT", "500")
        monkeypatch.setenv("REPRO_RECOVERY", "repair")
        scale = RunScale(num_cores=8, total_accesses=4000, l1_kb=2, l2_kb=8,
                         spill_window=64)
        result = run_app("barnes", SparseSpec(ratio=2.0), scale)
        assert result.meta["injected_faults"] == 1
        assert result.meta["repairs"] >= 1
        assert result.stats.recovery["repairs"] >= 1

    def test_recovery_implies_auditing(self, monkeypatch):
        from repro.analysis.runner import RunScale, run_app

        monkeypatch.setenv("REPRO_FAULTS", "corrupt_directory_entry@2000")
        monkeypatch.setenv("REPRO_FAULT_SEED", "5")
        monkeypatch.delenv("REPRO_AUDIT", raising=False)
        monkeypatch.setenv("REPRO_RECOVERY", "repair")
        scale = RunScale(num_cores=8, total_accesses=4000, l1_kb=2, l2_kb=8,
                         spill_window=64)
        result = run_app("barnes", SparseSpec(ratio=2.0), scale)
        assert result.meta["repairs"] >= 1
