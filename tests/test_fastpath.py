"""The private-hit fast lane: bit-identity, disengagement, trace cache.

The fast lane (`TraceEngine._run_fast`) is an optimization with a hard
contract: for any workload, scheme, and seed, its statistics must equal
the reference lane's byte for byte, and it must silently step aside for
any run that needs to observe individual transactions. These tests are
the tripwire for both halves — if the inlined hit logic ever drifts
from ``PrivateCore.classify``, the cross-scheme identity tests fail.
"""

import importlib.util
import json
import pathlib

import pytest

from repro.sim.config import (
    InLLCSpec,
    MgdSpec,
    SparseSpec,
    StashSpec,
    SystemConfig,
    TinySpec,
)
from repro.sim.engine import TraceEngine, run_trace
from repro.sim.fastpath import ENV_FAST, fast_lane_from_env
from repro.sim.system import System
from repro.telemetry import RingBufferSink, Tracer
from repro.workloads.generator import (
    ENV_TRACE_CACHE,
    clear_trace_cache,
    generate_streams,
    trace_cache_stats,
)

REPO = pathlib.Path(__file__).resolve().parent.parent

SCHEMES = {
    "sparse": SparseSpec(),
    "in_llc": InLLCSpec(),
    "tiny": TinySpec(spill=True),
    "mgd": MgdSpec(),
    "stash": StashSpec(),
}


def small_config(scheme) -> SystemConfig:
    return SystemConfig(num_cores=8, scheme=scheme)


@pytest.fixture(autouse=True)
def _fresh_trace_cache():
    clear_trace_cache()
    yield
    clear_trace_cache()


class TestBitIdentity:
    @pytest.mark.parametrize("name", sorted(SCHEMES))
    def test_fast_lane_matches_reference(self, name):
        config = small_config(SCHEMES[name])
        streams = generate_streams("bodytrack", config, 4000, seed=3)
        reference = run_trace(System(config), streams, fast_path=False)
        fast = run_trace(System(config), streams, fast_path=True)
        assert fast.dump() == reference.dump()

    def test_identity_holds_with_zero_warmup(self):
        config = small_config(SparseSpec())
        streams = generate_streams("barnes", config, 3000, seed=11)
        reference = run_trace(
            System(config), streams, warmup_fraction=0.0, fast_path=False
        )
        fast = run_trace(
            System(config), streams, warmup_fraction=0.0, fast_path=True
        )
        assert fast.dump() == reference.dump()


class TestEngagement:
    def test_engaged_for_plain_run(self):
        config = small_config(SparseSpec())
        engine = TraceEngine(System(config), [[]], fast_path=True)
        assert engine.fast_lane_engaged()

    def test_fast_path_false_disengages(self):
        config = small_config(SparseSpec())
        engine = TraceEngine(System(config), [[]], fast_path=False)
        assert not engine.fast_lane_engaged()

    @pytest.mark.parametrize("observer", ["auditor", "oracle", "recovery"])
    def test_observers_disengage(self, observer):
        config = small_config(SparseSpec())
        engine = TraceEngine(
            System(config), [[]], fast_path=True, **{observer: object()}
        )
        assert not engine.fast_lane_engaged()

    def test_enabled_tracer_disengages(self):
        config = small_config(SparseSpec())
        engine = TraceEngine(
            System(config),
            [[]],
            fast_path=True,
            tracer=Tracer(RingBufferSink()),
        )
        assert not engine.fast_lane_engaged()

    def test_fault_injector_disengages(self):
        config = small_config(SparseSpec())
        system = System(config)
        system.fault_injector = object()
        engine = TraceEngine(system, [[]], fast_path=True)
        assert not engine.fast_lane_engaged()

    def test_env_off_selects_reference_lane(self, monkeypatch):
        monkeypatch.setenv(ENV_FAST, "off")
        config = small_config(SparseSpec())
        engine = TraceEngine(System(config), [[]])
        assert not engine.fast_lane_engaged()


class TestFastLaneEnv:
    def test_default_on(self, monkeypatch):
        monkeypatch.delenv(ENV_FAST, raising=False)
        assert fast_lane_from_env() is True

    @pytest.mark.parametrize("value", ["off", "0", "false", "no", "OFF"])
    def test_off_values(self, monkeypatch, value):
        monkeypatch.setenv(ENV_FAST, value)
        assert fast_lane_from_env() is False

    @pytest.mark.parametrize("value", ["on", "1", "true", "yes"])
    def test_on_values(self, monkeypatch, value):
        monkeypatch.setenv(ENV_FAST, value)
        assert fast_lane_from_env() is True

    def test_unrecognized_warns_and_defaults(self, monkeypatch, capsys):
        monkeypatch.setenv(ENV_FAST, "sideways")
        assert fast_lane_from_env() is True
        assert ENV_FAST in capsys.readouterr().err


class TestMeasureStartEvent:
    def test_reference_lane_emits_measure_start(self):
        config = small_config(SparseSpec())
        streams = generate_streams("bodytrack", config, 2000, seed=5)
        sink = RingBufferSink()
        run_trace(System(config), streams, tracer=Tracer(sink))
        marks = [e for e in sink.events() if e.kind == "measure:start"]
        assert len(marks) == 1
        assert marks[0].data["warmup_accesses"] > 0
        assert marks[0].cycle is not None

    def test_zero_warmup_emits_no_mark(self):
        config = small_config(SparseSpec())
        streams = generate_streams("bodytrack", config, 2000, seed=5)
        sink = RingBufferSink()
        run_trace(
            System(config), streams, warmup_fraction=0.0, tracer=Tracer(sink)
        )
        assert not [e for e in sink.events() if e.kind == "measure:start"]


class TestTraceCache:
    def test_same_key_reuses_stream_objects(self):
        config = small_config(SparseSpec())
        first = generate_streams("bodytrack", config, 1000, seed=7)
        second = generate_streams("bodytrack", config, 1000, seed=7)
        assert second is first
        stats = trace_cache_stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["entries"] == 1

    def test_different_seed_misses(self):
        config = small_config(SparseSpec())
        first = generate_streams("bodytrack", config, 1000, seed=7)
        other = generate_streams("bodytrack", config, 1000, seed=8)
        assert other is not first
        assert trace_cache_stats()["misses"] == 2

    def test_scheme_does_not_key_the_cache(self):
        # Generation is scheme-independent: the same geometry under two
        # schemes must share one entry.
        sparse = generate_streams(
            "bodytrack", small_config(SparseSpec()), 1000, seed=7
        )
        tiny = generate_streams(
            "bodytrack", small_config(TinySpec()), 1000, seed=7
        )
        assert tiny is sparse

    def test_env_off_disables(self, monkeypatch):
        monkeypatch.setenv(ENV_TRACE_CACHE, "off")
        config = small_config(SparseSpec())
        first = generate_streams("bodytrack", config, 1000, seed=7)
        second = generate_streams("bodytrack", config, 1000, seed=7)
        assert second is not first
        assert trace_cache_stats()["entries"] == 0

    def test_capacity_evicts_lru(self, monkeypatch):
        monkeypatch.setenv(ENV_TRACE_CACHE, "1")
        config = small_config(SparseSpec())
        first = generate_streams("bodytrack", config, 1000, seed=1)
        generate_streams("bodytrack", config, 1000, seed=2)
        assert trace_cache_stats()["entries"] == 1
        refetched = generate_streams("bodytrack", config, 1000, seed=1)
        assert refetched is not first  # seed=1 was evicted by seed=2

    def test_unrecognized_capacity_warns_and_defaults(
        self, monkeypatch, capsys
    ):
        monkeypatch.setenv(ENV_TRACE_CACHE, "many")
        config = small_config(SparseSpec())
        first = generate_streams("bodytrack", config, 1000, seed=7)
        assert generate_streams("bodytrack", config, 1000, seed=7) is first
        assert ENV_TRACE_CACHE in capsys.readouterr().err


def _load_compare_bench():
    spec = importlib.util.spec_from_file_location(
        "compare_bench", REPO / "tools" / "compare_bench.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestCompareBench:
    def test_floor_violation_fails(self):
        cb = _load_compare_bench()
        spec = {"direction": "higher", "floor": 1.5}
        failures = cb.compare_metric("p", "speedup", spec, 2.0, 1.2, 0.15)
        assert failures and "floor" in failures[0]

    def test_within_tolerance_passes(self):
        cb = _load_compare_bench()
        spec = {"direction": "higher", "floor": 1.5}
        assert not cb.compare_metric("p", "speedup", spec, 2.0, 1.8, 0.15)

    def test_regression_beyond_tolerance_fails(self):
        cb = _load_compare_bench()
        spec = {"direction": "higher", "floor": 1.5}
        failures = cb.compare_metric("p", "speedup", spec, 2.2, 1.6, 0.15)
        assert failures and "regressed" in failures[0]

    def test_floor_only_skips_baseline_tolerance(self):
        cb = _load_compare_bench()
        spec = {"direction": "higher", "floor": 1.0, "floor_only": True}
        # 1.1 is a huge relative drop from 9.0 but still above the floor.
        assert not cb.compare_metric("p", "speedup", spec, 9.0, 1.1, 0.15)

    def test_missing_candidate_metric_fails(self):
        cb = _load_compare_bench()
        spec = {"direction": "higher", "floor": 1.0}
        failures = cb.compare_metric("p", "speedup", spec, 2.0, None, 0.15)
        assert failures and "missing" in failures[0]

    def test_directory_compare_end_to_end(self, tmp_path):
        cb = _load_compare_bench()
        baseline = tmp_path / "baseline"
        candidate = tmp_path / "candidate"
        baseline.mkdir()
        candidate.mkdir()
        gate = {"speedup": {"direction": "higher", "floor": 1.5}}
        point = {"name": "p", "metrics": {"speedup": 2.0}, "gate": gate}
        (baseline / "BENCH_p.json").write_text(json.dumps(point))
        good = dict(point, metrics={"speedup": 1.9})
        (candidate / "BENCH_p.json").write_text(json.dumps(good))
        report, failures = cb.compare(str(baseline), str(candidate), 0.15)
        assert not failures
        assert any("speedup=1.9" in line for line in report)

    def test_missing_candidate_point_fails(self, tmp_path):
        cb = _load_compare_bench()
        baseline = tmp_path / "baseline"
        candidate = tmp_path / "candidate"
        baseline.mkdir()
        candidate.mkdir()
        point = {
            "name": "p",
            "metrics": {"speedup": 2.0},
            "gate": {"speedup": {"direction": "higher", "floor": 1.5}},
        }
        (baseline / "BENCH_p.json").write_text(json.dumps(point))
        _, failures = cb.compare(str(baseline), str(candidate), 0.15)
        assert failures and "not produced" in failures[0]

    def test_new_point_without_baseline_is_not_gated(self, tmp_path):
        cb = _load_compare_bench()
        baseline = tmp_path / "baseline"
        candidate = tmp_path / "candidate"
        baseline.mkdir()
        candidate.mkdir()
        point = {
            "name": "fresh",
            "metrics": {"speedup": 0.1},
            "gate": {"speedup": {"direction": "higher", "floor": 1.5}},
        }
        (candidate / "BENCH_fresh.json").write_text(json.dumps(point))
        report, failures = cb.compare(str(baseline), str(candidate), 0.15)
        assert not failures
        assert any("no baseline" in line for line in report)

    def test_committed_baselines_pass_their_own_gate(self):
        cb = _load_compare_bench()
        baselines = REPO / "benchmarks" / "baselines"
        _, failures = cb.compare(str(baselines), str(baselines), 0.15)
        assert not failures
