"""Unit tests for the dynamic spill policy (paper §IV-B2)."""

from repro.core.spill import DynamicSpillPolicy, SpillConfig


def fill_window(policy, misses_sample=0, misses_other=0, window=None, shared=0):
    """Feed one full observation window with the given miss pattern."""
    window = window or policy.config.window_accesses
    half = window // 2
    for i in range(half):
        policy.record_access(
            in_sample_set=True, is_miss=i < misses_sample, is_shared_read=i < shared
        )
    for i in range(window - half):
        policy.record_access(
            in_sample_set=False, is_miss=i < misses_other, is_shared_read=False
        )


class TestThresholdAdaptation:
    def test_initial_threshold(self):
        policy = DynamicSpillPolicy(SpillConfig(initial_threshold=4))
        assert policy.threshold_index == 4

    def test_allows_at_or_above_threshold(self):
        policy = DynamicSpillPolicy(SpillConfig(initial_threshold=4))
        assert policy.allows(4) and policy.allows(7)
        assert not policy.allows(3)

    def test_threshold_decreases_when_guarantee_holds(self):
        policy = DynamicSpillPolicy(SpillConfig(window_accesses=64, initial_threshold=4))
        fill_window(policy)  # equal miss rates: guarantee holds
        assert policy.threshold_index == 3
        assert policy.threshold_decreases == 1

    def test_threshold_increases_when_guarantee_violated(self):
        policy = DynamicSpillPolicy(SpillConfig(window_accesses=64, initial_threshold=4))
        fill_window(policy, misses_sample=0, misses_other=32)
        assert policy.threshold_index == 5
        assert policy.threshold_increases == 1

    def test_threshold_saturates_at_zero(self):
        policy = DynamicSpillPolicy(SpillConfig(window_accesses=64, initial_threshold=1))
        fill_window(policy)
        fill_window(policy)
        assert policy.threshold_index == 0

    def test_threshold_saturates_at_seven(self):
        policy = DynamicSpillPolicy(SpillConfig(window_accesses=64, initial_threshold=7))
        fill_window(policy, misses_other=32)
        assert policy.threshold_index == 7

    def test_windows_counted(self):
        policy = DynamicSpillPolicy(SpillConfig(window_accesses=32))
        fill_window(policy)
        fill_window(policy)
        assert policy.windows == 2


class TestDeltaClasses:
    def _policy(self):
        return DynamicSpillPolicy(SpillConfig(window_accesses=64, initial_threshold=4))

    def test_class_a_high_mr_high_stra(self):
        policy = self._policy()
        fill_window(policy, misses_sample=16, misses_other=16, shared=30)
        assert policy.delta == policy.config.delta_a

    def test_class_b_high_mr_low_stra(self):
        policy = self._policy()
        fill_window(policy, misses_sample=16, misses_other=16, shared=0)
        assert policy.delta == policy.config.delta_b

    def test_class_c_low_mr_high_stra(self):
        policy = self._policy()
        fill_window(policy, shared=30)
        assert policy.delta == policy.config.delta_c

    def test_class_d_low_mr_low_stra(self):
        policy = self._policy()
        fill_window(policy)
        assert policy.delta == policy.config.delta_d

    def test_fixed_delta_ablation(self):
        policy = DynamicSpillPolicy(
            SpillConfig(window_accesses=64, adaptive_delta=False)
        )
        fill_window(policy, misses_sample=16, misses_other=16, shared=30)
        assert policy.delta == policy.config.delta_b

    def test_paper_delta_values(self):
        config = SpillConfig()
        assert config.delta_a == 1 / 4
        assert config.delta_b == 1 / 32
        assert config.delta_c == 1 / 16
        assert config.delta_d == 1 / 32


class TestWindowReset:
    def test_counters_reset_between_windows(self):
        policy = DynamicSpillPolicy(SpillConfig(window_accesses=32))
        fill_window(policy, misses_other=16)
        assert policy._accesses == 0
        assert policy._misses == 0
        assert policy._sample_accesses == 0
