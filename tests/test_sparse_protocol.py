"""Protocol tests for the baseline sparse-directory home (MESI)."""

import pytest

from conftest import Driver, make_system
from repro.sim.config import SparseSpec
from repro.types import PrivateState


@pytest.fixture
def d() -> Driver:
    return Driver(make_system(SparseSpec(ratio=2.0)))


class TestReadPaths:
    def test_first_read_grants_exclusive(self, d):
        d.read(0, 0x40)
        assert d.state(0, 0x40) is PrivateState.EXCLUSIVE

    def test_ifetch_grants_shared(self, d):
        """Instruction reads are answered in S even for one requester."""
        d.ifetch(0, 0x40)
        assert d.state(0, 0x40) is PrivateState.SHARED

    def test_second_reader_downgrades_owner(self, d):
        d.read(0, 0x40)
        d.read(1, 0x40)
        assert d.state(0, 0x40) is PrivateState.SHARED
        assert d.state(1, 0x40) is PrivateState.SHARED

    def test_read_after_write_downgrades_modified(self, d):
        d.write(0, 0x40)
        assert d.state(0, 0x40) is PrivateState.MODIFIED
        d.read(1, 0x40)
        assert d.state(0, 0x40) is PrivateState.SHARED
        assert d.state(1, 0x40) is PrivateState.SHARED

    def test_read_to_owned_block_is_three_hop(self, d):
        d.write(0, 0x40)
        d.read(1, 0x40)
        assert d.system.stats.three_hop >= 1

    def test_read_to_llc_resident_is_two_hop(self, d):
        d.read(0, 0x40)
        d.read(1, 0x40)  # 3-hop (owner forward)
        before = d.system.stats.two_hop
        d.read(2, 0x40)  # LLC has the data now: 2-hop
        assert d.system.stats.two_hop == before + 1

    def test_baseline_never_lengthens(self, d):
        d.fuzz(1500)
        assert d.system.stats.lengthened == 0


class TestWritePaths:
    def test_write_grants_modified(self, d):
        d.write(0, 0x40)
        assert d.state(0, 0x40) is PrivateState.MODIFIED

    def test_write_invalidates_sharers(self, d):
        d.read(0, 0x40)
        d.read(1, 0x40)
        d.write(2, 0x40)
        assert d.state(0, 0x40) is PrivateState.INVALID
        assert d.state(1, 0x40) is PrivateState.INVALID
        assert d.state(2, 0x40) is PrivateState.MODIFIED

    def test_write_steals_from_owner(self, d):
        d.write(0, 0x40)
        d.write(1, 0x40)
        assert d.state(0, 0x40) is PrivateState.INVALID
        assert d.state(1, 0x40) is PrivateState.MODIFIED

    def test_upgrade_from_shared(self, d):
        d.read(0, 0x40)
        d.read(1, 0x40)
        before = d.system.stats.upgrades
        d.write(0, 0x40)
        assert d.system.stats.upgrades == before + 1
        assert d.state(0, 0x40) is PrivateState.MODIFIED
        assert d.state(1, 0x40) is PrivateState.INVALID

    def test_write_hit_on_exclusive_is_silent(self, d):
        d.read(0, 0x40)
        before = d.system.stats.llc_transactions
        d.write(0, 0x40)
        assert d.system.stats.llc_transactions == before
        assert d.state(0, 0x40) is PrivateState.MODIFIED

    def test_invalidation_count(self, d):
        d.read(0, 0x40)
        d.read(1, 0x40)
        d.read(2, 0x40)
        before = d.system.stats.invalidations
        d.write(3, 0x40)
        assert d.system.stats.invalidations == before + 3


class TestDirectoryPressure:
    def test_small_directory_back_invalidates(self):
        d = Driver(make_system(SparseSpec(ratio=1 / 64)))
        d.fuzz(2500, num_blocks=400)
        assert d.system.stats.back_invalidations > 0

    def test_big_directory_rarely_back_invalidates(self):
        big = Driver(make_system(SparseSpec(ratio=2.0)))
        small = Driver(make_system(SparseSpec(ratio=1 / 64)))
        big.fuzz(2500, num_blocks=400)
        small.fuzz(2500, num_blocks=400)
        assert big.system.stats.back_invalidations < small.system.stats.back_invalidations

    def test_smaller_directory_is_slower(self):
        """The Fig. 1 effect on a micro scale: an undersized directory
        back-invalidates live private blocks, costing refetches."""
        def cycles(ratio):
            d = Driver(make_system(SparseSpec(ratio=ratio)))
            # Each core loops over a private footprint that fits its L2
            # but (in aggregate) far exceeds a 1/64x directory.
            for round_ in range(40):
                for core in range(4):
                    for block in range(30):
                        d.read(core, 0x1000 * (core + 1) + block)
            return d.now
        assert cycles(1 / 64) > 1.2 * cycles(2.0)


class TestEvictionNotices:
    def test_eviction_frees_directory_entry(self, d):
        directory = d.system.home.directory
        # Touch more blocks than one private set holds to force evictions.
        for addr in range(0, 2048, 64):
            d.read(0, addr)
        occupancy = directory.occupancy()
        resident = sum(1 for _ in d.system.cores[0].resident_blocks())
        assert occupancy == resident

    def test_dirty_eviction_updates_llc(self, d):
        d.write(0, 0x40)
        # Force eviction of 0x40 by filling its L2 set.
        conflicting = [0x40 + i * d.system.config.l2_sets for i in range(1, 9)]
        for addr in conflicting:
            d.read(0, addr)
        assert d.state(0, 0x40) is PrivateState.INVALID
        bank = d.system.home.banks[d.system.home.bank_of(0x40)]
        line, _ = bank.lookup(0x40, touch=False)
        assert line is not None

    def test_invariants_after_fuzz(self, d):
        d.fuzz(3000)


class TestSharedOnlyVariant:
    def test_private_blocks_never_occupy_directory(self):
        d = Driver(make_system(SparseSpec(ratio=1 / 16, shared_only=True)))
        for addr in range(0, 640, 64):
            d.read(0, addr)  # all exclusive: unbounded structure
        assert d.system.home.directory.occupancy() == 0

    def test_shared_block_enters_directory(self):
        d = Driver(make_system(SparseSpec(ratio=1 / 16, shared_only=True)))
        d.read(0, 0x40)
        d.read(1, 0x40)
        assert d.system.home.directory.occupancy() == 1

    def test_write_moves_block_back_to_unbounded(self):
        d = Driver(make_system(SparseSpec(ratio=1 / 16, shared_only=True)))
        d.read(0, 0x40)
        d.read(1, 0x40)
        d.write(2, 0x40)
        assert d.system.home.directory.occupancy() == 0
        assert d.system.home._unbounded[0x40].owner == 2

    def test_invariants_after_fuzz(self):
        d = Driver(make_system(SparseSpec(ratio=1 / 32, shared_only=True)))
        d.fuzz(3000)

    def test_zcache_variant_runs(self):
        d = Driver(make_system(SparseSpec(ratio=1 / 16, shared_only=True, zcache=True)))
        d.fuzz(2000)
