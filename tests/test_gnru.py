"""Unit tests for the gNRU generation-length estimator (paper §IV-A2)."""

from repro.core.gnru import A_MAX, B_MAX, T_MAX, TICK_CYCLES, GenerationEstimator


class TestTickClock:
    def test_no_ticks_before_first_boundary(self):
        est = GenerationEstimator(default_generation_ticks=4)
        assert est.advance(TICK_CYCLES - 1) == 0
        assert est.t == 0

    def test_t_advances_per_tick(self):
        est = GenerationEstimator()
        est.advance(3 * TICK_CYCLES)
        assert est.t == 3

    def test_t_wraps_at_ten_bits(self):
        est = GenerationEstimator(default_generation_ticks=1 << 20)
        est.advance((T_MAX + 5) * TICK_CYCLES)
        assert est.t == 5

    def test_advance_is_monotonic_safe(self):
        est = GenerationEstimator()
        est.advance(10 * TICK_CYCLES)
        assert est.advance(5 * TICK_CYCLES) == 0  # stale 'now' is ignored


class TestGenerations:
    def test_boundary_after_default_length(self):
        est = GenerationEstimator(default_generation_ticks=4)
        assert est.advance(3 * TICK_CYCLES) == 0
        assert est.advance(4 * TICK_CYCLES) == 1

    def test_multiple_boundaries_in_one_jump(self):
        est = GenerationEstimator(default_generation_ticks=2)
        boundaries = est.advance(10 * TICK_CYCLES)
        assert boundaries == 5

    def test_generation_counter_reloads(self):
        est = GenerationEstimator(default_generation_ticks=3)
        est.advance(3 * TICK_CYCLES)
        assert est.advance(5 * TICK_CYCLES) == 0
        assert est.advance(6 * TICK_CYCLES) == 1

    def test_generations_counted(self):
        est = GenerationEstimator(default_generation_ticks=1)
        est.advance(7 * TICK_CYCLES)
        assert est.generations == 7


class TestReuseEstimate:
    def test_default_before_samples(self):
        est = GenerationEstimator(default_generation_ticks=9)
        assert est.generation_length() == 9

    def test_observe_access_accumulates(self):
        est = GenerationEstimator()
        est.advance(10 * TICK_CYCLES)
        stamp = est.observe_access(4)  # gap of 6 ticks
        assert stamp == 10
        assert est.generation_length() == 6

    def test_average_of_gaps(self):
        est = GenerationEstimator()
        est.advance(10 * TICK_CYCLES)
        est.observe_access(6)  # gap 4
        est.observe_access(2)  # gap 8
        assert est.generation_length() == 6

    def test_wrapped_interval_skipped(self):
        """The paper only accumulates when Tlast < T."""
        est = GenerationEstimator(default_generation_ticks=5)
        est.advance(3 * TICK_CYCLES)
        est.observe_access(900)  # Tlast > T: wrapped, skipped
        assert est.samples == 0

    def test_saturation_halves_both(self):
        est = GenerationEstimator()
        est.advance(2 * TICK_CYCLES)
        for _ in range(B_MAX + 4):
            est.observe_access(1)
        assert est.samples < B_MAX
        assert est.acc < A_MAX

    def test_generation_length_at_least_one(self):
        est = GenerationEstimator()
        est.advance(TICK_CYCLES)
        for _ in range(10):
            est.observe_access(0)  # tiny gaps
        assert est.generation_length() >= 1
