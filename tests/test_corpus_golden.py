"""Golden replay over the committed scenario corpus.

Three layers of pinning on ``tests/corpus/*.rtrace``:

* **freshness** — every committed capture decodes to exactly the streams
  its scenario definition generates today (the fast in-process version
  of ``tools/rebuild_corpus.py --check``);
* **golden stats** — each scenario × scheme cell pins cycles, LLC
  misses, and invalidations in ``tests/snapshots/corpus_stats.json``;
  refresh intended changes with::

      python -m pytest tests/test_corpus_golden.py --update-snapshots

* **bit-identical replay** — a run fed by ``REPRO_TRACE_FILE`` publishes
  byte-identical statistics to the live seeded run that recorded the
  trace, for every scheme with the fast lane both on and off.

Plus the trace-cache regression: the per-process cache keys replayed
traces on *file identity* (path + content hash), so overwriting a trace
in place or calling :func:`clear_trace_cache` can never serve stale
streams.
"""

import json
from pathlib import Path

import pytest

from repro.sim.config import SystemConfig
from repro.sim.engine import run_trace
from repro.sim.system import System
from repro.types import Access, AccessKind
from repro.verify.differential import ALL_SCHEMES
from repro.verify.reproducer import default_verify_spec
from repro.workloads.capture import load_capture, save_capture
from repro.workloads.generator import (
    ENV_TRACE_FILE,
    clear_trace_cache,
    generate_streams,
    load_streams,
    trace_cache_stats,
)
from repro.workloads.scenarios import SCENARIOS, scenario_streams

CORPUS_DIR = Path(__file__).parent / "corpus"
SNAPSHOT_PATH = Path(__file__).parent / "snapshots" / "corpus_stats.json"

#: The counters each corpus cell pins. Raw values, not hashes: a golden
#: mismatch should show the reviewer the magnitude of the change.
PINNED = ("cycles", "llc_misses", "invalidations")


def corpus_path(name: str) -> Path:
    path = CORPUS_DIR / f"{name}.rtrace"
    assert path.exists(), (
        f"missing corpus capture {path}; regenerate with "
        "`python tools/rebuild_corpus.py`"
    )
    return path


def replay_config(header: dict, scheme: str) -> SystemConfig:
    geometry = header["geometry"]
    return SystemConfig(
        num_cores=geometry["num_cores"],
        l1_kb=geometry["l1_kb"],
        l2_kb=geometry["l2_kb"],
        scheme=default_verify_spec(scheme),
    )


def stats_blob(config: SystemConfig, streams, fast_path: bool) -> str:
    stats = run_trace(
        System(config), streams, warmup_fraction=0.0, fast_path=fast_path
    )
    return json.dumps(stats.dump(), sort_keys=True, separators=(",", ":"))


# ----------------------------------------------------------------------
# Freshness
# ----------------------------------------------------------------------

@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_corpus_capture_is_fresh(name):
    streams, header = load_capture(corpus_path(name))
    scenario = SCENARIOS[name]
    assert streams == scenario_streams(scenario), (
        f"{name}.rtrace is stale; rerun tools/rebuild_corpus.py"
    )
    assert header["seed"] == scenario.seed
    assert header["geometry"] == scenario.geometry()
    assert header["meta"]["scenario"] == name


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_corpus_capture_stays_in_budget(name):
    assert corpus_path(name).stat().st_size <= 50 * 1024


# ----------------------------------------------------------------------
# Golden stats grid
# ----------------------------------------------------------------------

def _compute_grid() -> "dict[str, dict[str, int]]":
    grid = {}
    for name in sorted(SCENARIOS):
        streams, header = load_capture(corpus_path(name))
        for scheme in ALL_SCHEMES:
            config = replay_config(header, scheme)
            stats = run_trace(System(config), streams, warmup_fraction=0.0)
            scalars = stats.dump()["scalars"]
            grid[f"{name}/{scheme}"] = {key: scalars[key] for key in PINNED}
    return grid


def test_corpus_grid_matches_snapshot(update_snapshots):
    grid = _compute_grid()
    if update_snapshots:
        SNAPSHOT_PATH.parent.mkdir(parents=True, exist_ok=True)
        SNAPSHOT_PATH.write_text(json.dumps(grid, indent=2, sort_keys=True) + "\n")
        pytest.skip("snapshots updated")
    assert SNAPSHOT_PATH.exists(), (
        "missing golden snapshot; generate it with "
        "`python -m pytest tests/test_corpus_golden.py --update-snapshots`"
    )
    golden = json.loads(SNAPSHOT_PATH.read_text())
    assert set(grid) == set(golden), "snapshot grid shape changed"
    mismatched = {
        key: (golden[key], grid[key])
        for key in grid
        if grid[key] != golden[key]
    }
    assert not mismatched, (
        f"corpus statistics changed: {mismatched}; if intended, refresh "
        "with --update-snapshots"
    )


# ----------------------------------------------------------------------
# Bit-identical replay
# ----------------------------------------------------------------------

def test_replay_is_bit_identical_across_lanes(monkeypatch):
    """REPRO_TRACE_FILE replay == live generation, byte for byte.

    The acceptance criterion of the record/replay pipeline: for a corpus
    trace, every scheme's published statistics dump is byte-identical
    between the live seeded run and the replayed run, with the fast lane
    both on and off.
    """
    name = "private-heavy"
    scenario = SCENARIOS[name]
    path = corpus_path(name)
    live_streams = scenario_streams(scenario)

    clear_trace_cache()
    monkeypatch.setenv(ENV_TRACE_FILE, str(path))
    # The app/accesses/seed arguments are decoys: with REPRO_TRACE_FILE
    # set, generate_streams must replay the capture and nothing else.
    replayed = generate_streams("barnes", scenario.config(), 999, seed=999)
    monkeypatch.delenv(ENV_TRACE_FILE)
    assert replayed == live_streams

    for scheme in ALL_SCHEMES:
        for fast_path in (False, True):
            config = scenario.config()
            config = SystemConfig(
                num_cores=config.num_cores,
                l1_kb=config.l1_kb,
                l2_kb=config.l2_kb,
                scheme=default_verify_spec(scheme),
            )
            live = stats_blob(config, live_streams, fast_path)
            again = stats_blob(config, replayed, fast_path)
            assert live == again, (
                f"replayed stats differ for {scheme} "
                f"(fast_path={fast_path})"
            )


def test_replay_rejects_geometry_mismatch(monkeypatch):
    path = corpus_path("private-heavy")
    clear_trace_cache()
    monkeypatch.setenv(ENV_TRACE_FILE, str(path))
    from repro.errors import TraceError

    with pytest.raises(TraceError, match="cores"):
        generate_streams(
            "barnes", SystemConfig(num_cores=4, l1_kb=1, l2_kb=4), 100
        )


# ----------------------------------------------------------------------
# Trace-cache file identity (regression)
# ----------------------------------------------------------------------

def _toy_capture(path, addr):
    save_capture(
        path,
        [
            [Access(0, addr, AccessKind.READ, 0)],
            [Access(1, addr + 1, AccessKind.WRITE, 0)],
        ],
    )
    return path


def test_cache_keys_on_content_not_just_path(tmp_path, monkeypatch):
    """Overwriting a trace at the same path must never serve stale streams."""
    monkeypatch.delenv("REPRO_TRACE_CACHE", raising=False)
    config = SystemConfig(num_cores=2, l1_kb=1, l2_kb=4)
    path = tmp_path / "same-name.rtrace"
    clear_trace_cache()

    _toy_capture(path, addr=100)
    first = load_streams(path, config)
    assert first[0][0].addr == 100
    # Warm: same content is a cache hit, same objects.
    assert load_streams(path, config) is first
    assert trace_cache_stats()["hits"] == 1

    _toy_capture(path, addr=200)
    second = load_streams(path, config)
    assert second[0][0].addr == 200, "stale cache entry served after overwrite"
    assert second is not first


def test_clear_trace_cache_resets_replay_entries(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_TRACE_CACHE", raising=False)
    config = SystemConfig(num_cores=2, l1_kb=1, l2_kb=4)
    path = _toy_capture(tmp_path / "t.rtrace", addr=5)
    clear_trace_cache()

    streams = load_streams(path, config)
    assert trace_cache_stats() == {"hits": 0, "misses": 1, "entries": 1}
    clear_trace_cache()
    assert trace_cache_stats() == {"hits": 0, "misses": 0, "entries": 0}
    # A fresh load after the clear re-reads the file and still agrees.
    assert load_streams(path, config) == streams
    assert trace_cache_stats()["misses"] == 1


def test_cache_disabled_still_replays_correctly(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_CACHE", "off")
    config = SystemConfig(num_cores=2, l1_kb=1, l2_kb=4)
    path = _toy_capture(tmp_path / "nocache.rtrace", addr=9)
    clear_trace_cache()
    assert load_streams(path, config)[0][0].addr == 9
    assert trace_cache_stats()["entries"] == 0
