"""Cross-scheme golden statistics snapshots.

Every (app, scheme) cell runs at quick scale and its full statistics
dump is hashed against ``tests/snapshots/stats_quick.json``. Any
behavioural change to the protocol engines, the workload generator, or
the statistics pipeline shows up as a hash mismatch here — if the
change is intended, refresh the file with::

    python -m pytest tests/test_snapshots.py --update-snapshots

and commit the diff. Hashes (not raw dumps) keep the checked-in file
small while still pinning every counter bit-exactly.
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.analysis.runner import RunScale, run_app
from repro.sim.config import InLLCSpec, MgdSpec, SparseSpec, StashSpec, TinySpec

SNAPSHOT_PATH = Path(__file__).parent / "snapshots" / "stats_quick.json"

APPS = ("compress", "barnes")

SCHEMES = {
    "sparse": SparseSpec(),
    "in_llc": InLLCSpec(),
    "tiny": TinySpec(ratio=1 / 32, policy="gnru", spill=True),
    "mgd": MgdSpec(),
    "stash": StashSpec(),
}


def _fingerprint(result) -> str:
    payload = {"cycles": result.cycles, "stats": result.stats.dump()}
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def _compute_grid() -> "dict[str, str]":
    scale = RunScale.quick()
    grid = {}
    for app in APPS:
        for name, spec in SCHEMES.items():
            grid[f"{app}/{name}"] = _fingerprint(run_app(app, spec, scale=scale))
    return grid


def test_quick_grid_matches_snapshot(update_snapshots):
    grid = _compute_grid()
    if update_snapshots:
        SNAPSHOT_PATH.parent.mkdir(parents=True, exist_ok=True)
        SNAPSHOT_PATH.write_text(json.dumps(grid, indent=2, sort_keys=True) + "\n")
        pytest.skip("snapshots updated")
    assert SNAPSHOT_PATH.exists(), (
        "missing golden snapshot; generate it with "
        "`python -m pytest tests/test_snapshots.py --update-snapshots`"
    )
    golden = json.loads(SNAPSHOT_PATH.read_text())
    assert set(grid) == set(golden), "snapshot grid shape changed"
    mismatched = [key for key in grid if grid[key] != golden[key]]
    assert mismatched == [], (
        f"statistics changed for {mismatched}; if intended, refresh with "
        "--update-snapshots"
    )


def test_snapshot_runs_are_deterministic():
    """The same cell computed twice yields the same fingerprint."""
    scale = RunScale.quick()
    first = _fingerprint(run_app("compress", SparseSpec(), scale=scale))
    second = _fingerprint(run_app("compress", SparseSpec(), scale=scale))
    assert first == second
