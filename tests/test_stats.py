"""Unit tests for SimStats bookkeeping and serialization."""

from repro.cache.llc import LLCLine
from repro.coherence.transaction import AccessOutcome
from repro.sim.stats import SimStats
from repro.types import AccessKind, LLCState


def outcome(**kw) -> AccessOutcome:
    out = AccessOutcome()
    for key, value in kw.items():
        setattr(out, key, value)
    return out


class TestOutcomeAccounting:
    def test_hop_counting(self):
        stats = SimStats()
        stats.on_outcome(AccessKind.READ, outcome(hops=2))
        stats.on_outcome(AccessKind.READ, outcome(hops=3))
        assert (stats.two_hop, stats.three_hop) == (1, 1)

    def test_lengthened_split_by_kind(self):
        stats = SimStats()
        stats.on_outcome(AccessKind.IFETCH, outcome(hops=3, lengthened=True))
        stats.on_outcome(AccessKind.READ, outcome(hops=3, lengthened=True))
        assert stats.lengthened == 2
        assert stats.lengthened_code == 1
        assert stats.lengthened_data == 1

    def test_miss_rate(self):
        stats = SimStats()
        stats.on_outcome(AccessKind.READ, outcome(dram_access=True))
        stats.on_outcome(AccessKind.READ, outcome())
        assert stats.llc_miss_rate == 0.5

    def test_zero_denominators(self):
        stats = SimStats()
        assert stats.llc_miss_rate == 0.0
        assert stats.lengthened_fraction == 0.0
        assert stats.shared_block_fraction == 0.0


class TestResidencyFlush:
    def _line(self, max_sharers=0, fwd=0, total=0) -> LLCLine:
        line = LLCLine(0, LLCState.CLEAN)
        line.sharers_seen = (1 << max_sharers) - 1  # max_sharers distinct cores
        line.fwd_reads = fwd
        line.total_reads = total
        return line

    def test_private_block_bin(self):
        stats = SimStats()
        stats.flush_residency(self._line(max_sharers=1))
        assert stats.sharer_bins[0] == 1
        assert stats.shared_block_fraction == 0.0

    def test_sharer_bins_boundaries(self):
        stats = SimStats()
        for sharers, expected_bin in ((2, 1), (4, 1), (5, 2), (8, 2), (9, 3), (16, 3), (17, 4)):
            stats.flush_residency(self._line(max_sharers=sharers))
        assert stats.sharer_bins == [0, 2, 2, 2, 1]

    def test_lengthened_blocks_and_categories(self):
        stats = SimStats()
        stats.flush_residency(self._line(max_sharers=3, fwd=9, total=10))
        assert stats.blocks_lengthened == 1
        # ratio 0.9 -> category 4
        assert stats.stra_block_categories[4] == 1
        assert stats.stra_access_categories[4] == 9

    def test_zero_fwd_reads_not_counted(self):
        stats = SimStats()
        stats.flush_residency(self._line(max_sharers=2, fwd=0, total=5))
        assert stats.blocks_lengthened == 0


class TestSerialization:
    def _populated(self) -> SimStats:
        stats = SimStats()
        stats.on_access(AccessKind.WRITE)
        stats.on_outcome(AccessKind.WRITE, outcome(hops=3, dram_access=True))
        stats.cycles = 1234
        stats.structures["tiny_hits"] = 7
        stats.flush_residency_lines = None  # not part of the API
        return stats

    def test_dump_load_roundtrip(self):
        stats = self._populated()
        clone = SimStats.load(stats.dump())
        assert clone.cycles == 1234
        assert clone.writes == 1
        assert clone.llc_misses == 1
        assert clone.structures["tiny_hits"] == 7

    def test_as_dict_has_derived_metrics(self):
        stats = self._populated()
        snapshot = stats.as_dict()
        assert snapshot["llc_miss_rate"] == 1.0
        assert "traffic" in snapshot

    def test_reset_zeroes_everything(self):
        stats = self._populated()
        meter = stats.traffic
        stats.reset()
        assert stats.accesses == 0
        assert stats.cycles == 0
        assert stats.traffic is meter
