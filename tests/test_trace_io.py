"""Tests for trace file save/load."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.sim.config import SparseSpec, SystemConfig
from repro.types import Access, AccessKind
from repro.workloads.generator import generate_streams
from repro.workloads.trace import FORMAT_VERSION, load_trace, save_trace


def small_streams():
    return [
        [Access(0, 0x10, AccessKind.READ, 5), Access(0, 0x20, AccessKind.WRITE, 3)],
        [Access(1, 0x30, AccessKind.IFETCH, 7)],
    ]


class TestRoundTrip:
    def test_streams_roundtrip(self, tmp_path):
        path = tmp_path / "trace.npz"
        original = small_streams()
        save_trace(path, original, meta={"app": "unit"})
        loaded, meta = load_trace(path)
        assert loaded == original
        assert meta == {"app": "unit"}

    def test_generated_trace_roundtrip(self, tmp_path):
        config = SystemConfig(num_cores=4, l1_kb=1, l2_kb=4, scheme=SparseSpec())
        streams = generate_streams("compress", config, 1200, seed=9)
        path = tmp_path / "compress.npz"
        save_trace(path, streams)
        loaded, _ = load_trace(path)
        assert loaded == streams

    def test_empty_core_streams_preserved(self, tmp_path):
        path = tmp_path / "t.npz"
        save_trace(path, [[], [Access(1, 1, AccessKind.READ)]])
        loaded, _ = load_trace(path)
        assert loaded[0] == []
        assert len(loaded[1]) == 1

    def test_replay_produces_identical_stats(self, tmp_path):
        from repro.sim.engine import run_trace
        from repro.sim.system import System

        config = SystemConfig(num_cores=4, l1_kb=1, l2_kb=4, scheme=SparseSpec())
        streams = generate_streams("compress", config, 800, seed=4)
        path = tmp_path / "replay.npz"
        save_trace(path, streams)
        loaded, _ = load_trace(path)
        a = run_trace(System(config), streams)
        b = run_trace(
            System(SystemConfig(num_cores=4, l1_kb=1, l2_kb=4, scheme=SparseSpec())),
            loaded,
        )
        assert a.cycles == b.cycles
        assert a.llc_misses == b.llc_misses


class TestErrorHandling:
    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError):
            load_trace(tmp_path / "absent.npz")

    def test_wrong_version_rejected(self, tmp_path, monkeypatch):
        path = tmp_path / "t.npz"
        monkeypatch.setattr("repro.workloads.trace.FORMAT_VERSION", 99)
        save_trace(path, small_streams())
        monkeypatch.undo()
        assert FORMAT_VERSION == 1
        with pytest.raises(TraceError):
            load_trace(path)

    def test_corrupt_kind_rejected(self, tmp_path):
        path = tmp_path / "t.npz"
        save_trace(path, small_streams())
        data = dict(np.load(path))
        data["kind"] = np.array([9] * len(data["kind"]), dtype=np.int8)
        np.savez_compressed(path, **data)
        with pytest.raises(TraceError):
            load_trace(path)

    def test_inconsistent_lengths_rejected(self, tmp_path):
        path = tmp_path / "t.npz"
        save_trace(path, small_streams())
        data = dict(np.load(path))
        data["gap"] = data["gap"][:-1]
        np.savez_compressed(path, **data)
        with pytest.raises(TraceError):
            load_trace(path)
