"""Tests for trace file save/load and reproducer JSON round-trips."""

import json

import numpy as np
import pytest

from repro.errors import TraceError
from repro.sim.config import SparseSpec, SystemConfig, TinySpec
from repro.types import Access, AccessKind
from repro.verify import (
    FaultStep,
    R,
    W,
    fault_plan_for,
    fuzz_run,
    load_reproducer,
    replay,
    reproducer_dict,
    save_reproducer,
)
from repro.verify.reproducer import spec_from_dict, spec_to_dict
from repro.workloads.generator import generate_streams
from repro.workloads.trace import FORMAT_VERSION, load_trace, save_trace


def small_streams():
    return [
        [Access(0, 0x10, AccessKind.READ, 5), Access(0, 0x20, AccessKind.WRITE, 3)],
        [Access(1, 0x30, AccessKind.IFETCH, 7)],
    ]


class TestRoundTrip:
    def test_streams_roundtrip(self, tmp_path):
        path = tmp_path / "trace.npz"
        original = small_streams()
        save_trace(path, original, meta={"app": "unit"})
        loaded, meta = load_trace(path)
        assert loaded == original
        assert meta == {"app": "unit"}

    def test_generated_trace_roundtrip(self, tmp_path):
        config = SystemConfig(num_cores=4, l1_kb=1, l2_kb=4, scheme=SparseSpec())
        streams = generate_streams("compress", config, 1200, seed=9)
        path = tmp_path / "compress.npz"
        save_trace(path, streams)
        loaded, _ = load_trace(path)
        assert loaded == streams

    def test_empty_core_streams_preserved(self, tmp_path):
        path = tmp_path / "t.npz"
        save_trace(path, [[], [Access(1, 1, AccessKind.READ)]])
        loaded, _ = load_trace(path)
        assert loaded[0] == []
        assert len(loaded[1]) == 1

    def test_replay_produces_identical_stats(self, tmp_path):
        from repro.sim.engine import run_trace
        from repro.sim.system import System

        config = SystemConfig(num_cores=4, l1_kb=1, l2_kb=4, scheme=SparseSpec())
        streams = generate_streams("compress", config, 800, seed=4)
        path = tmp_path / "replay.npz"
        save_trace(path, streams)
        loaded, _ = load_trace(path)
        a = run_trace(System(config), streams)
        b = run_trace(
            System(SystemConfig(num_cores=4, l1_kb=1, l2_kb=4, scheme=SparseSpec())),
            loaded,
        )
        assert a.cycles == b.cycles
        assert a.llc_misses == b.llc_misses


class TestErrorHandling:
    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError):
            load_trace(tmp_path / "absent.npz")

    def test_wrong_version_rejected(self, tmp_path, monkeypatch):
        path = tmp_path / "t.npz"
        monkeypatch.setattr("repro.workloads.trace.FORMAT_VERSION", 99)
        save_trace(path, small_streams())
        monkeypatch.undo()
        assert FORMAT_VERSION == 1
        with pytest.raises(TraceError):
            load_trace(path)

    def test_corrupt_kind_rejected(self, tmp_path):
        path = tmp_path / "t.npz"
        save_trace(path, small_streams())
        data = dict(np.load(path))
        data["kind"] = np.array([9] * len(data["kind"]), dtype=np.int8)
        np.savez_compressed(path, **data)
        with pytest.raises(TraceError):
            load_trace(path)

    def test_inconsistent_lengths_rejected(self, tmp_path):
        path = tmp_path / "t.npz"
        save_trace(path, small_streams())
        data = dict(np.load(path))
        data["gap"] = data["gap"][:-1]
        np.savez_compressed(path, **data)
        with pytest.raises(TraceError):
            load_trace(path)


class TestReproducerIO:
    """Round-trips of minimized-reproducer JSON (repro.verify)."""

    def _payload(self, **overrides):
        steps = [W(0, 5), FaultStep("drop_private_copy", 5, 0), R(1, 5)]
        kwargs = dict(seed=3)
        kwargs.update(overrides)
        return reproducer_dict(
            "sparse", SparseSpec(ratio=0.125), steps, "violation text", **kwargs
        )

    def test_minimized_fuzz_reproducer_roundtrips(self, tmp_path):
        """The file the fuzzer writes for a real shrunk failure loads
        back and still reproduces the violation."""
        plan = fault_plan_for("sparse", 7, 0)
        result = fuzz_run("sparse", SparseSpec(ratio=0.125), steps=1200, seed=8, plan=plan)
        assert result.detected
        payload = reproducer_dict(
            "sparse",
            SparseSpec(ratio=0.125),
            result.reproducer,
            result.violation,
            seed=8,
            num_cores=16,
            l1_kb=8,
            l2_kb=32,
        )
        path = save_reproducer(tmp_path / "shrunk.json", payload)
        loaded = load_reproducer(path)
        assert replay(loaded).failed

    def test_file_is_stable_plain_json(self, tmp_path):
        """Reproducers are sorted-key, indented JSON — diffable and
        byte-stable across save/load/save."""
        path = save_reproducer(tmp_path / "r.json", self._payload())
        text = path.read_text()
        loaded = load_reproducer(path)
        again = save_reproducer(tmp_path / "r2.json", loaded)
        assert again.read_text() == text

    def test_spec_roundtrip_preserves_tuning(self):
        spec = TinySpec(ratio=1 / 32, policy="gnru", spill=True, spill_window=32)
        restored = spec_from_dict("tiny", spec_to_dict(spec))
        assert restored == spec

    def test_spec_unknown_scheme_rejected(self):
        with pytest.raises(TraceError):
            spec_from_dict("bogus", {})

    def test_missing_key_rejected(self, tmp_path):
        for key in ("scheme", "spec", "geometry", "steps"):
            payload = self._payload()
            del payload[key]
            path = tmp_path / f"missing-{key}.json"
            path.write_text(json.dumps(payload))
            with pytest.raises(TraceError):
                load_reproducer(path)

    def test_fault_step_survives_roundtrip(self, tmp_path):
        path = save_reproducer(tmp_path / "r.json", self._payload())
        steps = load_reproducer(path)["steps"]
        fault = steps[1]
        assert fault["type"] == "fault"
        assert fault["kind"] == "drop_private_copy"
        assert fault["addr"] == 5

    def test_geometry_defaults_applied_on_replay(self, tmp_path):
        """Geometry keys omitted from older files fall back to the
        4-core litmus machine instead of crashing the replay."""
        payload = self._payload()
        payload["geometry"] = {}
        path = tmp_path / "r.json"
        path.write_text(json.dumps(payload))
        result = replay(load_reproducer(path))
        assert result.failed

    def test_clean_schedule_replays_clean(self, tmp_path):
        steps = [W(0, 5), R(1, 5), R(2, 5)]
        payload = reproducer_dict("sparse", SparseSpec(), steps, "", seed=1)
        path = save_reproducer(tmp_path / "clean.json", payload)
        result = replay(load_reproducer(path))
        assert result.violation is None
        assert result.executed == len(steps)
