"""Unit tests for the tiny directory and its allocation policies (§IV)."""

import pytest

from repro.coherence.info import CohInfo
from repro.core.gnru import TICK_CYCLES
from repro.core.stra import StraCounters
from repro.core.tiny_directory import (
    AllocationPolicy,
    TinyDirectory,
    FULLY_ASSOC_THRESHOLD,
)
from repro.errors import ConfigError


def stra_of_category(category: int) -> StraCounters:
    """Counters whose ratio falls in the requested category."""
    if category == 0:
        return StraCounters()
    if category == 7:
        return StraCounters(strac=63, oac=0)
    # Ci covers (1-1/2^(i-1), 1-1/2^i]; use the upper bound 1-1/2^i.
    strac = (1 << category) - 1
    return StraCounters(strac=strac, oac=1)


def make_tiny(entries=8, banks=1, policy=AllocationPolicy.DSTRA, assoc=4):
    return TinyDirectory(entries, banks, policy, assoc=assoc)


class TestConstruction:
    def test_too_small_rejected(self):
        with pytest.raises(ConfigError):
            TinyDirectory(2, 4, AllocationPolicy.DSTRA)

    def test_small_slices_fully_associative(self):
        tiny = TinyDirectory(FULLY_ASSOC_THRESHOLD, 1, AllocationPolicy.DSTRA)
        assert tiny._slices[0].num_sets == 1
        assert tiny._slices[0].assoc == FULLY_ASSOC_THRESHOLD

    def test_large_slices_set_associative(self):
        tiny = TinyDirectory(64, 1, AllocationPolicy.DSTRA, assoc=8)
        assert tiny._slices[0].num_sets == 8
        assert tiny._slices[0].assoc == 8


class TestDSTRAPolicy:
    def test_allocates_into_free_way(self):
        tiny = make_tiny()
        entry, victim = tiny.try_allocate(1, 0, CohInfo(sharers=1), StraCounters(), 0)
        assert entry is not None and victim is None

    def test_declines_equal_category(self):
        tiny = make_tiny(entries=1, assoc=1)
        tiny.try_allocate(1, 3, CohInfo(sharers=1), stra_of_category(3), 0)
        entry, victim = tiny.try_allocate(
            2, 3, CohInfo(sharers=1), stra_of_category(3), 0
        )
        assert entry is None and victim is None
        assert tiny.declined == 1

    def test_higher_category_replaces_lower(self):
        tiny = make_tiny(entries=1, assoc=1)
        tiny.try_allocate(1, 2, CohInfo(sharers=1), stra_of_category(2), 0)
        entry, victim = tiny.try_allocate(
            2, 5, CohInfo(sharers=1), stra_of_category(5), 0
        )
        assert entry is not None
        assert victim.addr == 1

    def test_lowest_category_way_is_victim(self):
        tiny = make_tiny(entries=3, assoc=3)
        for addr, cat in ((1, 4), (2, 1), (3, 6)):
            tiny.try_allocate(addr, cat, CohInfo(sharers=1), stra_of_category(cat), 0)
        entry, victim = tiny.try_allocate(
            9, 5, CohInfo(sharers=1), stra_of_category(5), 0
        )
        assert entry is not None
        assert victim.addr == 2  # category 1 was lowest

    def test_tie_breaks_to_lowest_way(self):
        tiny = make_tiny(entries=2, assoc=2)
        tiny.try_allocate(1, 2, CohInfo(sharers=1), stra_of_category(2), 0)
        tiny.try_allocate(2, 2, CohInfo(sharers=1), stra_of_category(2), 0)
        _, victim = tiny.try_allocate(9, 6, CohInfo(sharers=1), stra_of_category(6), 0)
        assert victim.addr == 1


class TestGNRUPolicy:
    def _gnru(self, entries=2, assoc=2):
        return TinyDirectory(
            entries, 1, AllocationPolicy.DSTRA_GNRU, assoc=assoc,
            default_generation_ticks=2,
        )

    def test_equal_category_with_ep_replaced(self):
        tiny = self._gnru(entries=1, assoc=1)
        tiny.try_allocate(1, 3, CohInfo(sharers=1), stra_of_category(3), 0)
        # Two full generations with no access: R clears, then EP sets.
        tiny.lookup(99, 10 * TICK_CYCLES)
        entry, victim = tiny.try_allocate(
            2, 3, CohInfo(sharers=1), stra_of_category(3), 10 * TICK_CYCLES
        )
        assert entry is not None and victim.addr == 1

    def test_recently_used_entry_protected(self):
        tiny = self._gnru(entries=1, assoc=1)
        tiny.try_allocate(1, 3, CohInfo(sharers=1), stra_of_category(3), 0)
        tiny.lookup(1, 10 * TICK_CYCLES)  # refresh R, clear EP
        entry, _ = tiny.try_allocate(
            2, 3, CohInfo(sharers=1), stra_of_category(3), 10 * TICK_CYCLES
        )
        assert entry is None

    def test_ep_preferred_among_equal_categories(self):
        tiny = self._gnru(entries=2, assoc=2)
        tiny.try_allocate(1, 3, CohInfo(sharers=1), stra_of_category(3), 0)
        tiny.try_allocate(2, 3, CohInfo(sharers=1), stra_of_category(3), 0)
        # Age both generations, then touch only entry 1.
        tiny.lookup(1, 10 * TICK_CYCLES)
        _, victim = tiny.try_allocate(
            9, 6, CohInfo(sharers=1), stra_of_category(6), 10 * TICK_CYCLES
        )
        assert victim.addr == 2

    def test_lookup_touch_sets_r_clears_ep(self):
        tiny = self._gnru(entries=1, assoc=1)
        tiny.try_allocate(1, 3, CohInfo(sharers=1), stra_of_category(3), 0)
        tiny.lookup(99, 10 * TICK_CYCLES)  # advance generations
        entry = tiny.find_quiet(1)
        assert entry.ep_bit
        tiny.lookup(1, 10 * TICK_CYCLES)
        assert entry.r_bit and not entry.ep_bit


class TestStructure:
    def test_lookup_counts_hits_and_misses(self):
        tiny = make_tiny()
        tiny.try_allocate(1, 1, CohInfo(sharers=1), stra_of_category(1), 0)
        tiny.lookup(1, 0)
        tiny.lookup(2, 0)
        assert (tiny.hits, tiny.misses) == (1, 1)

    def test_find_quiet_does_not_count(self):
        tiny = make_tiny()
        tiny.try_allocate(1, 1, CohInfo(sharers=1), stra_of_category(1), 0)
        tiny.find_quiet(1)
        assert tiny.hits == 0

    def test_remove(self):
        tiny = make_tiny()
        tiny.try_allocate(1, 1, CohInfo(sharers=1), stra_of_category(1), 0)
        assert tiny.remove(1) is not None
        assert tiny.remove(1) is None
        assert tiny.occupancy() == 0

    def test_occupancy_and_iter(self):
        tiny = make_tiny(entries=4, assoc=4)
        for addr in range(3):
            tiny.try_allocate(addr, 1, CohInfo(sharers=1), stra_of_category(1), 0)
        assert tiny.occupancy() == 3
        assert {entry.addr for entry in tiny.iter_entries()} == {0, 1, 2}

    def test_banked_distribution(self):
        tiny = TinyDirectory(8, 2, AllocationPolicy.DSTRA, assoc=4)
        tiny.try_allocate(0, 1, CohInfo(sharers=1), stra_of_category(1), 0)
        tiny.try_allocate(1, 1, CohInfo(sharers=1), stra_of_category(1), 0)
        assert tiny.find_quiet(0) is not None
        assert tiny.find_quiet(1) is not None
