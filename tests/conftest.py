"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os
import random

import pytest

from repro.sim.config import SystemConfig
from repro.sim.system import System
from repro.types import Access, AccessKind

try:
    from hypothesis import HealthCheck, settings as hypothesis_settings

    # ``ci``: derandomized with a generous fixed deadline, so property
    # tests are reproducible across runners and never flake on shared
    # hardware. ``dev`` (the default): stock settings, fresh random
    # examples every run. Select with HYPOTHESIS_PROFILE=ci|dev.
    hypothesis_settings.register_profile(
        "ci",
        derandomize=True,
        deadline=2000,
        suppress_health_check=(HealthCheck.too_slow,),
    )
    hypothesis_settings.register_profile("dev")
    hypothesis_settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
except ImportError:  # pragma: no cover - hypothesis is optional locally
    pass


def pytest_addoption(parser):
    parser.addoption(
        "--update-snapshots",
        action="store_true",
        default=False,
        help="rewrite golden statistics snapshots instead of asserting "
        "against them (see tests/test_snapshots.py)",
    )


@pytest.fixture
def update_snapshots(request):
    return request.config.getoption("--update-snapshots")


def tiny_config(scheme, num_cores: int = 4, **overrides) -> SystemConfig:
    """A minimal 4-core machine for protocol unit tests."""
    defaults = dict(num_cores=num_cores, l1_kb=1, l2_kb=4)
    defaults.update(overrides)
    return SystemConfig(scheme=scheme, **defaults)


def make_system(scheme, **overrides) -> System:
    """A :class:`System` over :func:`tiny_config`."""
    return System(tiny_config(scheme, **overrides))


class Driver:
    """Convenience wrapper to issue single accesses against a System."""

    def __init__(self, system: System) -> None:
        self.system = system
        self.now = 0

    def read(self, core: int, addr: int) -> int:
        return self._go(core, addr, AccessKind.READ)

    def write(self, core: int, addr: int) -> int:
        return self._go(core, addr, AccessKind.WRITE)

    def ifetch(self, core: int, addr: int) -> int:
        return self._go(core, addr, AccessKind.IFETCH)

    def _go(self, core: int, addr: int, kind: AccessKind) -> int:
        latency = self.system.access(Access(core, addr, kind), self.now)
        self.now += max(1, latency)
        return latency

    def state(self, core: int, addr: int):
        return self.system.cores[core].state_of(addr)

    def fuzz(self, steps: int, num_blocks: int = 160, seed: int = 7) -> None:
        """Random traffic with periodic invariant checks."""
        rng = random.Random(seed)
        kinds = [AccessKind.READ, AccessKind.WRITE, AccessKind.IFETCH]
        cores = self.system.config.num_cores
        for step in range(steps):
            self._go(rng.randrange(cores), rng.randrange(num_blocks), rng.choice(kinds))
            if step % 400 == 0:
                self.system.check_invariants()
        self.system.check_invariants()


@pytest.fixture
def driver_factory():
    """Factory fixture: build a Driver for a scheme spec."""

    def build(scheme, **overrides) -> Driver:
        return Driver(make_system(scheme, **overrides))

    return build
