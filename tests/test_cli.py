"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import FIGURES, main


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig01" in out and "fig22" in out

    def test_no_args_prints_usage(self, capsys):
        assert main([]) == 2

    def test_unknown_figure_rejected(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_every_bench_figure_has_cli_entry(self):
        for i in range(1, 23):
            assert f"fig{i:02d}" in FIGURES

    def test_runs_one_figure(self, capsys):
        code = main(["fig07", "--scale", "quick", "--apps", "compress"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Fig. 7" in out and "compress" in out

    def test_zcache_variant(self, capsys):
        code = main(["fig03z", "--scale", "quick", "--apps", "compress"])
        assert code == 0
        assert "Z-cache" in capsys.readouterr().out


class TestResilienceFlags:
    def test_audit_flag_sets_env(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_AUDIT", raising=False)
        code = main(["fig07", "--scale", "quick", "--apps", "compress",
                     "--audit"])
        assert code == 0
        import os

        assert os.environ.get("REPRO_AUDIT") == "on"

    def test_keep_going_reports_failures_and_exits_nonzero(
        self, capsys, monkeypatch
    ):
        def boom(app, scheme, scale=None, config=None):
            raise RuntimeError("synthetic failure")

        monkeypatch.setattr("repro.analysis.runner.run_app", boom)
        code = main(["fig07", "--scale", "quick", "--apps", "compress",
                     "--keep-going"])
        assert code == 1
        captured = capsys.readouterr()
        assert "FAILED" in captured.out or "FAILED" in captured.err
        assert "run(s) failed" in captured.err

    def test_without_keep_going_failures_abort(self, monkeypatch):
        def boom(app, scheme, scale=None, config=None):
            raise RuntimeError("synthetic failure")

        monkeypatch.setattr("repro.analysis.runner.run_app", boom)
        with pytest.raises(RuntimeError):
            main(["fig07", "--scale", "quick", "--apps", "compress"])

    def test_audited_sweep_runs_clean(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_AUDIT", "on")
        code = main(["fig07", "--scale", "quick", "--apps", "compress"])
        assert code == 0
