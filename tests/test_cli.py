"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import FIGURES, main


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig01" in out and "fig22" in out

    def test_no_args_prints_usage(self, capsys):
        assert main([]) == 2

    def test_unknown_figure_rejected(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_every_bench_figure_has_cli_entry(self):
        for i in range(1, 23):
            assert f"fig{i:02d}" in FIGURES

    def test_runs_one_figure(self, capsys):
        code = main(["fig07", "--scale", "quick", "--apps", "compress"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Fig. 7" in out and "compress" in out

    def test_zcache_variant(self, capsys):
        code = main(["fig03z", "--scale", "quick", "--apps", "compress"])
        assert code == 0
        assert "Z-cache" in capsys.readouterr().out
