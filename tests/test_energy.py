"""Unit tests for the analytical energy model (Fig. 21 substitute)."""

import pytest

from repro.energy.model import EnergyBreakdown, EnergyModel, directory_kilobytes
from repro.sim.config import SystemConfig
from repro.sim.stats import SimStats


class TestScalingLaws:
    def test_access_energy_grows_with_size(self):
        model = EnergyModel()
        assert model.access_energy(1024) > model.access_energy(64) > model.access_energy(1)

    def test_access_energy_sublinear(self):
        model = EnergyModel()
        small = model.access_energy(64)
        big = model.access_energy(64 * 16)
        assert big < 16 * small  # sqrt scaling, not linear

    def test_leakage_linear_in_capacity(self):
        model = EnergyModel()
        assert model.leakage_energy(200, 1000) == pytest.approx(
            2 * model.leakage_energy(100, 1000)
        )

    def test_leakage_linear_in_time(self):
        model = EnergyModel()
        assert model.leakage_energy(100, 2000) == pytest.approx(
            2 * model.leakage_energy(100, 1000)
        )


class TestDirectoryFootprint:
    def test_paper_tiny_directory_sizes(self):
        """§V: the 1/128x and 1/256x tiny directories cost ~47.5/23.75 KB."""
        config = SystemConfig.paper()
        kb_128 = directory_kilobytes(config, 1 / 128, tiny=True)
        kb_256 = directory_kilobytes(config, 1 / 256, tiny=True)
        assert kb_128 == pytest.approx(47.5, rel=0.15)
        assert kb_256 == pytest.approx(23.75, rel=0.15)

    def test_tiny_entries_wider_than_sparse(self):
        config = SystemConfig.paper()
        assert directory_kilobytes(config, 1 / 32, tiny=True) > directory_kilobytes(
            config, 1 / 32, tiny=False
        )

    def test_ratio_scales_linearly(self):
        config = SystemConfig.paper()
        assert directory_kilobytes(config, 1.0) == pytest.approx(
            2 * directory_kilobytes(config, 0.5)
        )


class TestSystemEnergy:
    def _stats(self, cycles=100_000) -> SimStats:
        stats = SimStats()
        stats.cycles = cycles
        stats.llc_transactions = 5_000
        stats.structures = {
            "llc_tag_lookups": 5_000,
            "llc_data_writes": 2_000,
            "dir_lookups": 5_000,
            "dir_allocations": 1_000,
        }
        return stats

    def test_breakdown_total(self):
        breakdown = EnergyBreakdown(dynamic=2.0, leakage=3.0)
        assert breakdown.total == 5.0

    def test_bigger_directory_leaks_more(self):
        config = SystemConfig.scaled(4)
        model = EnergyModel()
        stats = self._stats()
        small = model.directory_energy(config, stats, directory_kb=10.0)
        large = model.directory_energy(config, stats, directory_kb=1000.0)
        assert large.leakage > small.leakage
        assert large.dynamic > small.dynamic

    def test_system_energy_combines_llc_and_directory(self):
        config = SystemConfig.scaled(4)
        model = EnergyModel()
        stats = self._stats()
        combined = model.system_energy(config, stats, directory_kb=100.0)
        llc_only = model.llc_energy(config, stats)
        assert combined.total > llc_only.total

    def test_longer_run_leaks_more(self):
        config = SystemConfig.scaled(4)
        model = EnergyModel()
        short = model.llc_energy(config, self._stats(cycles=1_000))
        long = model.llc_energy(config, self._stats(cycles=1_000_000))
        assert long.leakage > short.leakage
